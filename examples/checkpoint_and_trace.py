#!/usr/bin/env python3
"""Future-work features from the paper's §V, working: checkpoint I/O that
overlaps useful computation, unified-scheduler tracing — and checkpoint-driven
recovery from an injected mid-run failure.

Part 1: a small distributed solver loop checkpoints its state to simulated
NVM every few iterations without stalling (the checkpoint module snapshots
and writes asynchronously), then "fails" and restores. A TraceRecorder
watches the whole run and prints per-module time attribution plus a
Chrome-trace export.

Part 2: a seeded FaultPlan kills the place running a sort mid-computation.
The in-flight coroutine dies with PlaceFailure, async_retry respawns it on a
surviving place, the fresh attempt restores its input from the checkpoint,
and the final answer matches a no-fault baseline bit-for-bit.

Run:  python examples/checkpoint_and_trace.py
"""

import tempfile

import numpy as np

from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.io import checkpoint_factory
from repro.mpi import mpi_factory
from repro.platform import MachineSpec
from repro.resilience import Backoff, FaultInjector, FaultPlan, async_retry
from repro.runtime.api import charge, finish, forasync, now, timer_future
from repro.tools import TraceRecorder
from repro.util.errors import PlaceFailure

MACHINE = MachineSpec(name="nvm-node", sockets=2, cores_per_socket=4,
                      nvm_bytes=4 << 30)


def main_rank(ctx):
    ck = ctx.runtime.module("checkpoint")
    mpi = ctx.mpi
    me, n = ctx.rank, ctx.nranks
    state = np.full(1 << 16, float(me))  # 512 KB of "solver state"

    ckpt_futures = []
    for it in range(6):
        # one "iteration" of compute across the rank's workers
        finish(lambda: forasync(64, lambda i: charge(2e-5), chunks=64))
        state += 1.0
        if it % 2 == 1:
            # asynchronous checkpoint: snapshot now, write in the background
            ckpt_futures.append(
                ck.checkpoint_async(f"it{it}", {"state": state}))
        yield mpi.barrier_async()

    for f in ckpt_futures:
        yield f
    t_work_done = now()

    # "failure": wipe the state, restore the latest checkpoint (it5)
    state[:] = -1
    restored = yield ck.restore_async("it5")
    return (float(restored["state"][0]), t_work_done, ck.checkpoints())


DUO = MachineSpec(name="nvm-duo", sockets=2, cores_per_socket=2,
                  nvm_bytes=1 << 30)


def recover_rank(ctx):
    """Checkpoint the input, then sort it on one specific place — and survive
    that place dying mid-sort."""
    rt = ctx.runtime
    ck = rt.module("checkpoint")
    rng = np.random.default_rng(100 + ctx.rank)
    keys = rng.integers(0, 1 << 20, size=4096).astype(np.int64)
    yield ck.checkpoint_async("keys", {"k": keys})

    target = rt.model.place("socket1.l3")

    def sort_body():
        # Idempotent re-entry: every attempt re-reads its input from the
        # checkpoint, so a replay after a failure starts from clean state.
        restored = (yield ck.restore_async("keys"))["k"]
        chunks = [np.sort(c) for c in np.array_split(restored, 8)]
        merged = chunks[0]
        for c in chunks[1:]:
            yield timer_future(2e-5)  # suspension points where death can land
            merged = np.concatenate([merged, c])
        return np.sort(merged)

    out = yield async_retry(sort_body, attempts=3, backoff=Backoff(base=1e-5),
                            retry_on=PlaceFailure, name="sort", place=target)
    return out


def run_recovery() -> None:
    cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2,
                            machine=DUO, detail="numa")
    factories = [checkpoint_factory()]
    baseline = spmd_run(recover_rank, cluster, module_factories=factories)

    plan = FaultPlan.from_spec({
        "seed": 42,
        "faults": [{"kind": "place_fail", "at": 1e-4, "rank": 1,
                    "place": "socket1.l3", "max_faults": 1}],
    })
    inj = FaultInjector(plan)
    chaos = spmd_run(recover_rank, cluster, module_factories=factories,
                     fault_injector=inj)

    print("fault log (virtual_time, kind, detail):")
    for t, kind, detail in inj.events:
        print(f"  {t * 1e6:9.2f} us  {kind:<12} {detail}")
    assert inj.events, "the planned place failure never fired"

    stats = chaos.merged_stats()
    killed = stats.counter("resilience", "tasks_killed")
    retries = stats.counter("resilience", "retries")
    ttr = stats.series.get("resilience/time_to_recovery", [])
    print(f"tasks killed by the dead place: {killed}, retries: {retries}")
    if ttr:
        print(f"time to recovery: {ttr[-1][1] * 1e6:.2f} us (virtual)")
    assert killed >= 1 and retries >= 1

    for r, (want, got) in enumerate(zip(baseline.results, chaos.results)):
        assert np.array_equal(want, got), f"rank {r} diverged from baseline"
    print(f"all {chaos.nranks} ranks match the no-fault baseline "
          f"(makespan {baseline.makespan * 1e3:.3f} ms -> "
          f"{chaos.makespan * 1e3:.3f} ms under the fault)")


def main() -> None:
    tracer = TraceRecorder()
    ex = SimExecutor()
    ex.attach_tracer(tracer)
    cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=8,
                            machine=MACHINE)
    res = spmd_run(main_rank, cluster, executor=ex,
                   module_factories=[checkpoint_factory(), mpi_factory()])

    for r, (val, t_done, keys) in enumerate(res.results):
        print(f"rank {r}: restored state value {val} "
              f"(expected {r + 6}.0... after 6 iterations: {float(r) + 6}) "
              f"checkpoints={keys}")
        assert val == r + 6
    print(f"\nvirtual makespan: {res.makespan * 1e3:.3f} ms "
          "(checkpoint writes overlapped the iteration barriers)")

    print("\n--- unified-scheduler trace (paper §V tooling) ---")
    print(tracer.summary())
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        path = fh.name
    tracer.save_chrome_trace(path)
    print(f"\nChrome-trace written to {path} (open in chrome://tracing)")

    print("\n--- checkpoint-driven recovery under an injected failure ---")
    run_recovery()


if __name__ == "__main__":
    main()
