#!/usr/bin/env python3
"""Composability demo: four pluggable modules cooperating in one program.

A small distributed pipeline that would need four separate runtimes without
unified scheduling (paper §I's motivation):

  1. every rank runs a CUDA kernel over its local data;
  2. results flow to the next rank with an MPI isend chained on the kernel
     future (``MPI_Isend_await``);
  3. a global OpenSHMEM counter tracks completion, and each rank's final
     stage is predicated on it with the paper's novel ``shmem_async_when``;
  4. rank 0 collects a checksum via a UPC++ RPC from every rank.

Everything is scheduled by one generalized work-stealing runtime per rank;
no module knows the others exist.

Run:  python examples/composable_modules.py
"""

import numpy as np

from repro.cuda import cuda_factory
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.shmem import shmem_factory
from repro.upcxx import upcxx_factory


def main_rank(ctx):
    me, n = ctx.rank, ctx.nranks
    mpi, cu, sh, ux = ctx.mpi, ctx.cuda, ctx.shmem, ctx.upcxx
    N = 1 << 12

    # symmetric completion counter + a results mailbox at rank 0
    done_count = sh.malloc(1, dtype=np.int64)
    yield sh.barrier_all_async()

    # stage 1: GPU kernel over local data
    host = np.full(N, float(me + 1))
    dev = cu.malloc(N)
    h2d = cu.memcpy_async(dev, host)
    kernel = cu.kernel_async(
        lambda: np.sqrt(dev.data, out=dev.data),
        flops=N * 4, bytes_moved=N * 16, await_futures=[h2d],
    )

    # stage 2: ship a digest to the right neighbor, chained on the kernel —
    # the MPI module composes with the CUDA module through futures alone.
    out = np.zeros(N)
    d2h = cu.memcpy_async(out, dev)  # same stream: runs after the kernel
    send = mpi.isend_await(lambda: float(out.sum()), (me + 1) % n, d2h, tag=1)
    digest, src, _ = yield mpi.irecv(src=(me - 1) % n, tag=1)

    # stage 3: bump the global counter; every rank's epilogue task fires
    # only when ALL ranks got their neighbor digest (shmem_async_when).
    yield sh.atomic_add_async(done_count, 1, 0)
    epilogue_ran = []
    when_all_done = sh.async_when(
        done_count, "ge", n, lambda: epilogue_ran.append(me))
    if me == 0:
        # rank 0 republishes the counter to everyone once it saturates
        yield sh.wait_until_async(done_count, "ge", n)
        for pe in range(1, n):
            yield sh.put_async(done_count, np.array([n]), pe)
    yield when_all_done
    yield send

    # stage 4: rank 0 pulls a checksum from every rank via UPC++ RPC.
    total = None
    if me == 0:
        parts = []
        for r in range(n):
            parts.append((yield ux.rpc(r, lambda d=digest: d)))
        total = sum(parts)
    yield ux.barrier_async()
    return (digest, epilogue_ran, total)


def main() -> None:
    cluster = ClusterConfig(nodes=4, ranks_per_node=1, workers_per_rank=4,
                            machine=machine("titan"))
    res = spmd_run(main_rank, cluster, module_factories=[
        mpi_factory(), cuda_factory(), shmem_factory(), upcxx_factory(),
    ])
    print("per-rank (neighbor digest, epilogue, rank0 checksum):")
    for r, row in enumerate(res.results):
        print(f"  rank {r}: digest={row[0]:10.2f} epilogue={row[1]} "
              f"total={row[2]}")
    print(f"\nvirtual makespan: {res.makespan * 1e3:.4f} ms | "
          f"fabric messages: {res.fabric.messages_sent}")
    stats = res.merged_stats()
    activity = {}
    for (mod, _op), count in stats.counters.items():
        activity[mod] = activity.get(mod, 0) + count
    print("operations per module (one unified scheduler saw them all):",
          dict(sorted(activity.items())))


if __name__ == "__main__":
    main()
