#!/usr/bin/env python3
"""UTS at a glance: three load-balancing disciplines on one unbalanced tree.

Counts the same geometric tree (paper §III-C1) with lock-based stealing
(OpenSHMEM+OpenMP style), coarse-grain task waves (OpenMP-Tasks style), and
HiPER's lock-free asynchronous stealing, and prints the Fig. 7 comparison at
one strong-scaling point.

Run:  python examples/unbalanced_tree.py
"""

from repro.apps.uts import UtsConfig, sequential_count, uts_main
from repro.distrib import ClusterConfig, spmd_run
from repro.net import network
from repro.platform import machine
from repro.shmem import shmem_factory


def main() -> None:
    cfg = UtsConfig(root_children=1200, mean_children=0.95, seed=9,
                    node_cost=2e-6)
    oracle = sequential_count(cfg)
    print(f"tree size (serial oracle): {oracle} nodes\n")

    cluster = ClusterConfig(
        nodes=8, ranks_per_node=1, workers_per_rank=8,
        machine=machine("titan"), network=network("gemini"),
    )
    for variant, label in [
        ("shmem_omp", "OpenSHMEM+OpenMP (lock-based stealing)"),
        ("omp_tasks", "OpenSHMEM+OpenMP Tasks (coarse sync)"),
        ("hiper", "HiPER / AsyncSHMEM (lock-free, async)"),
    ]:
        res = spmd_run(uts_main(variant, cfg), cluster,
                       module_factories=[shmem_factory()])
        total = sum(res.results)
        assert total == oracle, f"lost nodes: {total} != {oracle}"
        busy_ranks = sum(1 for r in res.results if r > 0)
        stats = res.merged_stats()
        print(f"{label:45s} {res.makespan * 1e3:9.3f} ms | "
              f"ranks that processed work: {busy_ranks}/8 | "
              f"atomics: {stats.counter('shmem', 'cswap') + stats.counter('shmem', 'fadd')}")

    print("\nall three counted the exact tree; timing differences are pure "
          "scheduling structure (Fig. 7)")


if __name__ == "__main__":
    main()
