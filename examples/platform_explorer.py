#!/usr/bin/env python3
"""Platform models and scheduling paths (paper §II-A/§II-B3, Figs. 1-3).

Builds platform graphs for the paper's evaluation machines, saves/loads the
JSON format, constructs custom pop/steal paths, and shows how path policy
changes where work runs.

Run:  python examples/platform_explorer.py
"""

import tempfile

from repro import HiperRuntime, SimExecutor, async_at, finish
from repro.platform import (
    PlaceType,
    PlatformModel,
    discover,
    machine,
    make_paths,
)
from repro.runtime.context import current_context


def main() -> None:
    # 1. hwloc-style discovery for the paper's machines
    for name in ("edison", "titan"):
        model = discover(machine(name), detail="numa")
        kinds = {}
        for p in model:
            kinds[p.kind.value] = kinds.get(p.kind.value, 0) + 1
        print(f"{name:>8s}: {len(model)} places {kinds}, "
              f"{model.num_workers} workers")

    # 2. JSON round trip (the paper's configuration file format)
    model = discover(machine("titan"), num_workers=4, detail="numa")
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        path = fh.name
    model.save(path)
    reloaded = PlatformModel.load(path)
    print(f"\nJSON round trip: {len(reloaded)} places, "
          f"edges preserved: {reloaded.to_json_dict() == model.to_json_dict()}")
    print("sample of the JSON:")
    print("\n".join(model.to_json().splitlines()[:8]), "...")

    # 3. pop/steal paths: the default policy funnels the interconnect
    paths = make_paths(model, "default")
    nic = model.first_of_type(PlaceType.INTERCONNECT)
    print(f"\ndefault policy: interconnect on workers "
          f"{paths.workers_covering(nic)} only (THREAD_FUNNELED)")
    for w in range(model.num_workers):
        print(f"  worker {w} pop path: "
              + " -> ".join(p.name for p in paths.pop[w]))

    # 4. run a runtime on it and target places explicitly
    ex = SimExecutor()
    rt = HiperRuntime(model.copy(), ex, paths="default").start()

    def program():
        seen = []

        def report(tag):
            ctx = current_context()
            seen.append((tag, ctx.task.place.name, ctx.worker.wid))

        finish(lambda: [
            async_at(lambda: report("gpu-task"),
                     rt.model.first_of_type(PlaceType.GPU_MEM)),
            async_at(lambda: report("nic-task"), rt.interconnect),
            async_at(lambda: report("mem-task"), rt.sysmem),
        ])
        return seen

    for tag, place, worker in rt.run(program):
        print(f"  {tag:>9s} ran at {place:>12s} on worker {worker}")
    rt.shutdown()


if __name__ == "__main__":
    main()
