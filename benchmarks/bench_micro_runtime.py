"""Runtime micro-benchmarks (the overheads behind paper §II's design and the
tooling discussion in §V): task spawn/dispatch, future satisfaction chains,
steal throughput, and taskified-communication round trips.

These measure REAL wall time of the framework machinery (ops/second of the
Python implementation) — unlike the figure benches, where the science is in
virtual time.
"""

import numpy as np

from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform import discover, machine
from repro.runtime.api import async_, async_future, finish, forasync
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime

N_TASKS = 2000


def _sim_rt(workers=4):
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=workers)
    return HiperRuntime(model, ex).start()


def test_spawn_and_join_throughput_sim(benchmark):
    rt = _sim_rt()

    def run():
        rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(N_TASKS)]))

    benchmark(run)
    benchmark.extra_info["tasks_per_call"] = N_TASKS


def test_spawn_and_join_throughput_sim_w16(benchmark):
    """Same spawn/join storm at 16 workers: stresses worker selection and
    the steal/wake machinery, where per-dispatch O(W) costs dominate."""
    rt = _sim_rt(workers=16)

    def run():
        rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(N_TASKS)]))

    benchmark(run)
    benchmark.extra_info["tasks_per_call"] = N_TASKS
    benchmark.extra_info["workers"] = 16


def test_future_chain_throughput_sim(benchmark):
    rt = _sim_rt(workers=1)

    def run():
        def main():
            f = async_future(lambda: 0)
            for _ in range(500):
                f = async_future(lambda: 1)
            return f.get()

        rt.run(main)

    benchmark(run)
    benchmark.extra_info["chain_length"] = 500


def test_forasync_chunking_throughput_sim(benchmark):
    rt = _sim_rt()
    data = np.zeros(1 << 14)

    def run():
        rt.run(lambda: finish(lambda: forasync(
            range(0, data.size, 64),
            lambda i: data[i : i + 64].sum(), chunks=64)))

    benchmark(run)


def test_spawn_and_join_armed_injector_sim(benchmark):
    """No-fault resilience overhead: the same spawn/join storm as
    test_spawn_and_join_throughput_sim, but with a FaultInjector armed whose
    one task rule never matches. Measures what the fault hook and redirect
    checks cost on the hot path when nothing is actually injected — compare
    the two benches in the ledger to see the tax."""
    from repro.resilience import FaultInjector, FaultPlan

    rt = _sim_rt()
    plan = FaultPlan.from_spec({
        "seed": 0,
        "faults": [{"kind": "task_fail", "name": "never-spawned"}],
    })
    FaultInjector(plan).attach(rt.executor)

    def run():
        rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(N_TASKS)]))

    benchmark(run)
    benchmark.extra_info["tasks_per_call"] = N_TASKS
    benchmark.extra_info["injector"] = "armed, zero matching rules"


def test_promise_callback_overhead(benchmark):
    def run():
        for _ in range(1000):
            p = Promise()
            p.get_future().on_ready(lambda f: None)
            p.put(1)

    benchmark(run)
    benchmark.extra_info["promises_per_call"] = 1000


def test_steal_path_search_overhead(benchmark):
    """Cost of one pop/steal round over a full-detail platform."""
    from repro.runtime.worker import find_task

    ex = SimExecutor()
    model = discover(machine("edison"), num_workers=8, detail="full")
    rt = HiperRuntime(model, ex).start()
    worker = rt.workers[3]

    def run():
        for _ in range(1000):
            find_task(worker)  # empty deques: full path scan

    benchmark(run)
    benchmark.extra_info["searches_per_call"] = 1000


def test_spawn_and_join_throughput_threads(benchmark):
    ex = ThreadedExecutor(block_timeout=30.0)
    model = discover(machine("workstation"), num_workers=4,
                     with_interconnect=False)
    rt = HiperRuntime(model, ex).start()

    def run():
        rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(200)]))

    benchmark(run)
    ex.shutdown()
    benchmark.extra_info["tasks_per_call"] = 200
