"""Programmability table (paper §III, qualitative claims quantified).

For every benchmark, count per-variant: source LoC, blocking call sites that
hold a worker (finish-style joins), and the receive/polling operations each
variant performs at runtime. The paper argues HiPER's future-based APIs
"reduce programmer burden"; these are the measurable proxies.
"""

from repro.apps.geo.variants import run_hiper as geo_hiper
from repro.apps.geo.variants import run_mpi_cuda as geo_cuda
from repro.apps.geo.variants import run_mpi_omp as geo_omp
from repro.apps.graph500.variants import run_hiper as g500_hiper
from repro.apps.graph500.variants import run_mpi as g500_mpi
from repro.apps.hpgmg.solver import run_hiper as mg_hiper
from repro.apps.hpgmg.solver import run_reference as mg_ref
from repro.apps.isx.variants import run_flat as isx_flat
from repro.apps.isx.variants import run_hiper as isx_hiper
from repro.apps.isx.variants import run_hybrid as isx_hybrid
from repro.apps.uts.variants import run_hiper as uts_hiper
from repro.apps.uts.variants import run_omp_tasks as uts_tasks
from repro.apps.uts.variants import run_shmem_omp as uts_omp
from repro.bench import source_loc


ROWS = [
    ("GEO", [("mpi_omp", geo_omp), ("mpi_cuda", geo_cuda),
             ("hiper", geo_hiper)]),
    ("ISx", [("flat", isx_flat), ("hybrid", isx_hybrid),
             ("hiper", isx_hiper)]),
    ("UTS", [("shmem_omp", uts_omp), ("omp_tasks", uts_tasks),
             ("hiper", uts_hiper)]),
    ("Graph500", [("mpi", g500_mpi), ("hiper", g500_hiper)]),
    ("HPGMG", [("reference", mg_ref), ("hiper", mg_hiper)]),
]


def test_programmability_loc_table(benchmark):
    table = {}

    def _collect():
        for app, variants in ROWS:
            for name, fn in variants:
                table[(app, name)] = source_loc(fn)

    benchmark.pedantic(_collect, rounds=1, iterations=1)
    print("\nProgrammability: variant implementation size (non-blank LoC)")
    print(f"{'app':>10s} | {'variant':>12s} | {'LoC':>5s}")
    for (app, name), loc in table.items():
        print(f"{app:>10s} | {name:>12s} | {loc:5d}")
        benchmark.extra_info[f"{app}/{name}"] = loc

    # The HiPER variants stay within the same order of magnitude as the
    # references while adding asynchrony — the paper's "syntactically
    # similar to their standard variants" claim. (The deeper programmability
    # win — zero receive/polling call sites — is asserted quantitatively in
    # bench_graph500.py.)
    for app, variants in ROWS:
        locs = dict((n, source_loc(f)) for n, f in variants)
        ref = min(v for k, v in locs.items() if k != "hiper")
        assert locs["hiper"] < 4 * ref, (app, locs)
