"""DES engine micro-benchmarks: raw event throughput of the simulated
executor's two engines (``engine="objects"`` heapq vs. ``engine="flat"``
slab + calendar queue — see ``docs/sim-internals.md``).

Two workload shapes bracket what the fabric actually generates:

- **wave storm** — many delivery waves outstanding at once, each wave one
  timestamp carrying thousands of events (the 512/1024-rank ISx all-to-all
  collapse shape). Producers mirror the production path: the objects engine's
  ``call_at`` takes a thunk, so the fabric must allocate one closure per
  delivery; the flat engine's ``call_at_batch`` prices the wave with one
  shared function. This pair is the ledger's headline comparison — the flat
  engine's reason to exist.
- **random storm** — self-rearming timer chains at scattered timestamps
  (polling services, timeouts, retries): all-singleton cohorts, the objects
  engine's best case. The flat engine only has to hold parity here.

Recorded to ``BENCH_sim.json`` via ``python -m repro bench-record --suite
sim``. Real wall time (events/second of the Python implementation), not
virtual time.
"""

import functools
import os
import random
import time

from repro.exec.sim import SimExecutor

WAVES = 32
PER_WAVE = 16384
RANDOM_EVENTS = 150_000
CHAINS = 64

# Sharded pair: a 512-rank ISx key exchange (the wave shape, end-to-end
# through the SPMD runtime) run single-shard vs. across 2 OS-process
# shards under the conservative-window protocol. The >=2x speedup story
# needs >=4 cores; on a 1-core container the pair instead records the
# measured ratio plus the window-overhead fraction (wall time the shards
# spend blocked at window barriers), mirroring BENCH_procs.json.
ISX_RANKS = 512
ISX_KEYS_PER_PE = 64
ISX_SHARDS = 2
_isx_wall = {}


def _isx_wave(shards):
    from repro.distrib.spmd import ClusterConfig, spmd_run
    from repro.shmem import shmem_factory
    from repro.verify.spmd_workloads import isx_exchange_factory

    info = {}

    def run():
        cfg = ClusterConfig(nodes=ISX_RANKS, ranks_per_node=1, seed=0)
        ex = SimExecutor(engine="flat", shards=shards)
        t0 = time.perf_counter()
        res = spmd_run(isx_exchange_factory(keys_per_pe=ISX_KEYS_PER_PE),
                       cfg, module_factories=[shmem_factory(direct=True)],
                       executor=ex)
        info["wall_s"] = time.perf_counter() - t0
        assert sum(c for c, _ in res.results) == ISX_RANKS * ISX_KEYS_PER_PE
        if shards == 1:
            ex.shutdown()
        else:
            info["windows"] = res.windows
            info["idle_s"] = sum(
                t["idle_wall_s"] for t in res.shard_counters)

    return run, info


def _drain(ex):
    while ex.pending_events():
        ex._advance_events()


def _wave_storm(engine):
    """All waves outstanding up front: a deep queue of same-timestamp
    cohorts, dispatched oldest-first."""
    n_total = WAVES * PER_WAVE
    sink = lambda i: None  # noqa: E731 - minimal callback, cost is the engine

    def run():
        ex = SimExecutor(engine=engine)
        for w in range(WAVES):
            t = 1e-6 * (w + 1)
            if engine == "flat":
                ex.call_at_batch([t] * PER_WAVE, sink, list(range(PER_WAVE)))
            else:
                for i in range(PER_WAVE):
                    ex.call_at(t, functools.partial(sink, i))
        _drain(ex)
        assert ex.events_processed == n_total
        # Release the slab between rounds: pytest-benchmark disables GC, so
        # without the explicit shutdown each round's executor would pile up
        # and later rounds would measure memory pressure, not the engine.
        ex.shutdown()

    return run, n_total


def _random_storm(engine):
    """Self-rearming timer chains: every cohort is a singleton."""

    def run():
        rng = random.Random(42)
        ex = SimExecutor(engine=engine)
        delays = [rng.random() for _ in range(RANDOM_EVENTS)]
        state = {"i": 0}

        def tick(arg=None):
            i = state["i"]
            if i < RANDOM_EVENTS:
                state["i"] = i + 1
                ex.call_later(delays[i], tick)

        for _ in range(CHAINS):
            i = state["i"]
            state["i"] = i + 1
            ex.call_later(delays[i], tick)
        _drain(ex)
        assert ex.events_processed == RANDOM_EVENTS
        ex.shutdown()

    return run


def test_wave_storm_objects(benchmark):
    run, n = _wave_storm("objects")
    benchmark(run)
    benchmark.extra_info["events_per_call"] = n
    benchmark.extra_info["engine"] = "objects"


def test_wave_storm_flat(benchmark):
    run, n = _wave_storm("flat")
    benchmark(run)
    benchmark.extra_info["events_per_call"] = n
    benchmark.extra_info["engine"] = "flat"


def test_random_storm_objects(benchmark):
    benchmark(_random_storm("objects"))
    benchmark.extra_info["events_per_call"] = RANDOM_EVENTS
    benchmark.extra_info["engine"] = "objects"


def test_random_storm_flat(benchmark):
    benchmark(_random_storm("flat"))
    benchmark.extra_info["events_per_call"] = RANDOM_EVENTS
    benchmark.extra_info["engine"] = "flat"


def test_isx_wave_512_single_shard(benchmark):
    run, info = _isx_wave(1)
    benchmark.pedantic(run, rounds=1, iterations=1)
    _isx_wall["single"] = info["wall_s"]
    benchmark.extra_info.update(
        engine="flat", ranks=ISX_RANKS, shards=1,
        keys_per_pe=ISX_KEYS_PER_PE, cpu_count=os.cpu_count())


def test_isx_wave_512_sharded(benchmark):
    run, info = _isx_wave(ISX_SHARDS)
    benchmark.pedantic(run, rounds=1, iterations=1)
    extra = {
        "engine": "flat-sharded", "ranks": ISX_RANKS, "shards": ISX_SHARDS,
        "keys_per_pe": ISX_KEYS_PER_PE, "cpu_count": os.cpu_count(),
        "windows": info["windows"],
        # Fraction of total shard wall time spent blocked at window
        # barriers — the protocol's cost, and on few cores its bound.
        "window_overhead_fraction": round(
            info["idle_s"] / (ISX_SHARDS * info["wall_s"]), 3),
    }
    single = _isx_wall.get("single")
    if single:  # requires the single-shard test in the same run
        extra["time_vs_single_shard"] = round(info["wall_s"] / single, 2)
    benchmark.extra_info.update(extra)
