"""DES engine micro-benchmarks: raw event throughput of the simulated
executor's two engines (``engine="objects"`` heapq vs. ``engine="flat"``
slab + calendar queue — see ``docs/sim-internals.md``).

Two workload shapes bracket what the fabric actually generates:

- **wave storm** — many delivery waves outstanding at once, each wave one
  timestamp carrying thousands of events (the 512/1024-rank ISx all-to-all
  collapse shape). Producers mirror the production path: the objects engine's
  ``call_at`` takes a thunk, so the fabric must allocate one closure per
  delivery; the flat engine's ``call_at_batch`` prices the wave with one
  shared function. This pair is the ledger's headline comparison — the flat
  engine's reason to exist.
- **random storm** — self-rearming timer chains at scattered timestamps
  (polling services, timeouts, retries): all-singleton cohorts, the objects
  engine's best case. The flat engine only has to hold parity here.

Recorded to ``BENCH_sim.json`` via ``python -m repro bench-record --suite
sim``. Real wall time (events/second of the Python implementation), not
virtual time.
"""

import functools
import random

from repro.exec.sim import SimExecutor

WAVES = 32
PER_WAVE = 16384
RANDOM_EVENTS = 150_000
CHAINS = 64


def _drain(ex):
    while ex.pending_events():
        ex._advance_events()


def _wave_storm(engine):
    """All waves outstanding up front: a deep queue of same-timestamp
    cohorts, dispatched oldest-first."""
    n_total = WAVES * PER_WAVE
    sink = lambda i: None  # noqa: E731 - minimal callback, cost is the engine

    def run():
        ex = SimExecutor(engine=engine)
        for w in range(WAVES):
            t = 1e-6 * (w + 1)
            if engine == "flat":
                ex.call_at_batch([t] * PER_WAVE, sink, list(range(PER_WAVE)))
            else:
                for i in range(PER_WAVE):
                    ex.call_at(t, functools.partial(sink, i))
        _drain(ex)
        assert ex.events_processed == n_total
        # Release the slab between rounds: pytest-benchmark disables GC, so
        # without the explicit shutdown each round's executor would pile up
        # and later rounds would measure memory pressure, not the engine.
        ex.shutdown()

    return run, n_total


def _random_storm(engine):
    """Self-rearming timer chains: every cohort is a singleton."""

    def run():
        rng = random.Random(42)
        ex = SimExecutor(engine=engine)
        delays = [rng.random() for _ in range(RANDOM_EVENTS)]
        state = {"i": 0}

        def tick(arg=None):
            i = state["i"]
            if i < RANDOM_EVENTS:
                state["i"] = i + 1
                ex.call_later(delays[i], tick)

        for _ in range(CHAINS):
            i = state["i"]
            state["i"] = i + 1
            ex.call_later(delays[i], tick)
        _drain(ex)
        assert ex.events_processed == RANDOM_EVENTS
        ex.shutdown()

    return run


def test_wave_storm_objects(benchmark):
    run, n = _wave_storm("objects")
    benchmark(run)
    benchmark.extra_info["events_per_call"] = n
    benchmark.extra_info["engine"] = "objects"


def test_wave_storm_flat(benchmark):
    run, n = _wave_storm("flat")
    benchmark(run)
    benchmark.extra_info["events_per_call"] = n
    benchmark.extra_info["engine"] = "flat"


def test_random_storm_objects(benchmark):
    benchmark(_random_storm("objects"))
    benchmark.extra_info["events_per_call"] = RANDOM_EVENTS
    benchmark.extra_info["engine"] = "objects"


def test_random_storm_flat(benchmark):
    benchmark(_random_storm("flat"))
    benchmark.extra_info["events_per_call"] = RANDOM_EVENTS
    benchmark.extra_info["engine"] = "flat"
