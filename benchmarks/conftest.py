"""Shared configuration for the figure benchmarks.

Every benchmark wraps ONE full sweep (pytest-benchmark's wall time measures
the simulation cost, not the science); the scientific output is the virtual-
time table printed to stdout and attached to ``extra_info``.
"""

import pytest


def run_sweep_once(benchmark, sweep_fn):
    """Run ``sweep_fn`` exactly once under pytest-benchmark, print its table,
    attach the series to extra_info, and return it."""
    result_box = {}

    def _target():
        result_box["sweep"] = sweep_fn()

    benchmark.pedantic(_target, rounds=1, iterations=1)
    sw = result_box["sweep"]
    print("\n" + sw.table())
    benchmark.extra_info.update(sw.flat())
    return sw


@pytest.fixture
def sweep_runner(benchmark):
    return lambda sweep_fn: run_sweep_once(benchmark, sweep_fn)
