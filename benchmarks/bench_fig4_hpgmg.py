"""Fig. 4 — HPGMG-FV weak scaling on Titan (paper §III-B).

Series: the reference MPI+OpenMP hybrid and the HiPER (UPC++ + MPI)
composition, weak-scaled with fixed boxes per rank (the paper's
``8 boxes per rank`` advice, geometrically scaled down — DESIGN.md §2).

Expected shape (paper): the two are comparable in performance across the
sweep; metric is DOF/s (higher is better), as HPGMG reports.
"""

from repro.apps.hpgmg import HpgmgConfig, hpgmg_main
from repro.bench import Series, cluster_for, sweep
from repro.distrib import spmd_run
from repro.mpi import mpi_factory
from repro.upcxx import upcxx_factory

NODES = [1, 2, 4, 8, 16]
CFG = HpgmgConfig(box_dim=8, boxes_xy=2, boxes_z_per_rank=2, cycles=4)


def _variant(name):
    def run(nodes):
        res = spmd_run(
            hpgmg_main(name, CFG),
            cluster_for("titan", nodes, layout="hybrid"),
            module_factories=[mpi_factory(), upcxx_factory()],
        )
        hist = res.results[0][0]
        assert hist[-1] < hist[0] * 1e-2, "multigrid failed to converge"
        return res

    return run


def _dof_per_s(res):
    cfg = CFG
    cells = cfg.nz_local * cfg.nx * cfg.ny * res.nranks
    return cells * cfg.cycles / res.makespan / 1e6  # MDOF/s


def test_fig4_hpgmg_weak_scaling(sweep_runner):
    sw = sweep_runner(lambda: sweep(
        "Fig 4 — HPGMG-FV weak scaling (Titan), MDOF/s (higher is better)",
        [
            Series("reference_hybrid", _variant("reference")),
            Series("hiper_upcxx", _variant("hiper")),
        ],
        NODES,
        metric=_dof_per_s,
        unit="MDOF/s",
    ))
    ref = sw.values["reference_hybrid"]
    hip = sw.values["hiper_upcxx"]
    # paper shape: comparable performance across the sweep
    for n in NODES:
        assert 0.5 < hip[n] / ref[n] < 2.0, (n, hip[n], ref[n])
    # throughput grows with nodes (weak scaling adds DOF)
    assert ref[NODES[-1]] > ref[1] * 2
