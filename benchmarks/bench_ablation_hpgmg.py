"""HPGMG numerical ablation: the intergrid transfer pair.

DESIGN.md calls out the choice of variational transfers (trilinear
prolongation + its scaled adjoint as restriction) over the naive
averaging/injection pair. This bench measures V-cycle convergence factors for
both pairs — the naive pair degrades with level count, the variational pair
stays near mesh-independent.
"""

import numpy as np

from repro.apps.hpgmg import SerialMg, manufactured_problem
from repro.apps.hpgmg.ops import (
    alloc_field,
    interior,
    norm2,
    prolong_fv,
    residual,
    restrict_fv,
    restrict_inject_mean,
)


class _MeanRestrictMg(SerialMg):
    """SerialMg with the naive averaging restriction (ablation arm)."""

    def vcycle(self, u, f, level=0):
        h = self.hs[level]
        if level == self.nlevels - 1:
            self._smooth(u, f, h, self.nu_coarse)
            return
        self._smooth(u, f, h, self.nu_pre)
        r = residual(u, f, h)
        fc = alloc_field(self.shapes[level + 1])
        interior(fc)[...] = restrict_inject_mean(r)
        uc = alloc_field(self.shapes[level + 1])
        self.vcycle(uc, fc, level + 1)
        interior(u)[...] += prolong_fv(interior(uc))
        self._smooth(u, f, h, self.nu_post)


def _asymptotic_factor(mg_cls, n, cycles=10):
    h = 1.0 / n
    _, f = manufactured_problem(n, n, n, h)
    mg = mg_cls((n, n, n), h)
    _, hist = mg.solve(f, cycles=cycles, rtol=0)
    return hist[-1] / hist[-2]


def test_ablation_transfer_pair(benchmark):
    out = {}

    def run():
        for n in (16, 32):
            out[f"variational@{n}"] = _asymptotic_factor(SerialMg, n)
            out[f"mean_restrict@{n}"] = _asymptotic_factor(_MeanRestrictMg, n)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nHPGMG V-cycle asymptotic convergence factor (lower is better):")
    for k, v in out.items():
        print(f"  {k:>18s}: {v:.3f}")
    benchmark.extra_info.update(out)
    for n in (16, 32):
        assert out[f"variational@{n}"] < 0.55
        assert out[f"variational@{n}"] < out[f"mean_restrict@{n}"]
