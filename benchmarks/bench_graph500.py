"""Graph500 (paper §III-C2): performance parity + programmability gains.

The paper reports "little performance improvement to-date" for the HiPER
Graph500 but large programmability benefits from replacing the reference
code's constant receive polling with ``shmem_async_when``. This bench
reproduces both: a strong-scaling timing table (parity expected) and a
programmability table (receive-side operations per implementation).
"""

import numpy as np

from repro.apps.graph500 import (
    Graph500Config,
    block_bounds,
    build_csr,
    graph500_main,
    kronecker_edges,
    pick_root,
    validate_bfs,
)
from repro.bench import Series, cluster_for, source_loc, sweep
from repro.distrib import spmd_run
from repro.mpi import mpi_factory
from repro.shmem import shmem_factory

NODES = [1, 2, 4, 8]
CFG = Graph500Config(scale=12, edgefactor=16)


def _run(variant, nodes, validate=False):
    res = spmd_run(
        graph500_main(variant, CFG),
        cluster_for("edison", nodes, layout="hybrid", workers_cap=8),
        module_factories=[mpi_factory(), shmem_factory()],
    )
    if validate:
        edges = kronecker_edges(CFG)
        parent = np.full(CFG.nvertices, -1, dtype=np.int64)
        for r, blk in enumerate(res.results):
            lo, hi = block_bounds(CFG.nvertices, res.nranks, r)
            parent[lo:hi] = blk
        rows, _ = build_csr(edges, CFG.nvertices)
        assert validate_bfs(CFG, edges, pick_root(CFG, rows), parent) > 0
    return res


def test_graph500_parity_and_programmability(sweep_runner):
    sw = sweep_runner(lambda: sweep(
        f"Graph500 BFS strong scaling (scale={CFG.scale}, ef={CFG.edgefactor})",
        [
            Series("mpi_reference", lambda n: _run("mpi", n, validate=(n == 2))),
            Series("hiper_async_when", lambda n: _run("hiper", n, validate=(n == 2))),
        ],
        NODES,
    ))
    ref = sw.values["mpi_reference"]
    hip = sw.values["hiper_async_when"]
    # paper: little performance difference either way
    for n in NODES[1:]:
        assert 0.4 < hip[n] / ref[n] < 2.5, (n, hip[n], ref[n])

    # programmability: the hiper variant has NO receive-side calls at all —
    # arrival handling is delegated to the runtime via shmem_async_when.
    r = _run("mpi", 4)
    h = _run("hiper", 4)
    rs, hs = r.merged_stats(), h.merged_stats()
    rows = [
        ("alltoall calls", rs.counter("mpi", "alltoall"),
         hs.counter("mpi", "alltoall")),
        ("irecv calls", rs.counter("mpi", "irecv"), hs.counter("mpi", "irecv")),
        ("async_when handlers", rs.counter("shmem", "async_when"),
         hs.counter("shmem", "async_when")),
    ]
    print("\nGraph500 programmability (4 nodes):")
    print(f"{'metric':>22s} | {'mpi_reference':>14s} | {'hiper':>10s}")
    for name, a, b in rows:
        print(f"{name:>22s} | {a:14d} | {b:10d}")
    from repro.apps.graph500.variants import run_hiper, run_mpi
    print(f"{'variant source LoC':>22s} | {source_loc(run_mpi):14d} | "
          f"{source_loc(run_hiper):10d}")
    assert rs.counter("mpi", "alltoall") > 0
    assert hs.counter("mpi", "alltoall") == 0
    assert hs.counter("mpi", "irecv") == 0
    assert hs.counter("shmem", "async_when") > 0
