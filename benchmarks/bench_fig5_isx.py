"""Fig. 5 — ISx weak scaling on Titan (paper §III-B).

Series: Flat OpenSHMEM (process per core), OpenSHMEM+OpenMP hybrid (process
per node), and HiPER/AsyncSHMEM. Weak scaling: keys per PE constant, so a
hybrid PE carries cores-per-node times a flat PE's keys.

Expected shape (paper): flat competitive at small node counts, then collapses
at large scale as every core-rank joins the global all-to-all (per-node NIC
incast); the hybrids stay flat; HiPER tracks the hybrid reference.

Workload scaling (DESIGN.md §2): keys arrays are small in memory; compute
and wire costs are charged at ``byte_scale`` times the carried size, mapping
to the paper's 2^29-keys/PE configuration.
"""

from repro.apps.isx import IsxConfig, isx_main, validate_isx
from repro.bench import Series, cluster_for, sweep
from repro.distrib import spmd_run
from repro.platform import machine
from repro.shmem import shmem_factory

NODES = [1, 2, 4, 8, 16, 32]
KEYS_FLAT = 1 << 11
BYTE_SCALE = 1 << 7
CORES = machine("titan").cores  # 16


def _flat(nodes):
    cfg = IsxConfig(keys_per_pe=KEYS_FLAT, byte_scale=BYTE_SCALE)
    res = spmd_run(
        isx_main("flat", cfg), cluster_for("titan", nodes, layout="flat"),
        module_factories=[shmem_factory(direct=True)],
    )
    validate_isx(cfg, res.nranks, res.results)
    return res


def _hybrid(variant):
    def run(nodes):
        cfg = IsxConfig(keys_per_pe=KEYS_FLAT * CORES, byte_scale=BYTE_SCALE)
        res = spmd_run(
            isx_main(variant, cfg),
            cluster_for("titan", nodes, layout="hybrid"),
            module_factories=[shmem_factory()],
        )
        validate_isx(cfg, res.nranks, res.results)
        return res

    return run


def test_fig5_isx_weak_scaling(sweep_runner):
    sw = sweep_runner(lambda: sweep(
        "Fig 5 — ISx weak scaling (Titan), time per sort",
        [
            Series("flat_openshmem", _flat),
            Series("shmem_omp_hybrid", _hybrid("hybrid")),
            Series("hiper_asyncshmem", _hybrid("hiper")),
        ],
        NODES,
    ))
    flat = sw.values["flat_openshmem"]
    hybrid = sw.values["shmem_omp_hybrid"]
    hiper = sw.values["hiper_asyncshmem"]
    # paper shape: flat competitive at small node counts...
    assert flat[1] < hybrid[1] * 1.6
    assert flat[2] < hybrid[2] * 1.6
    # ...collapses at the largest scale,
    assert flat[NODES[-1]] > 2.0 * hybrid[NODES[-1]]
    # hybrids weak-scale once communication exists (2+ nodes; the 1-node
    # point is network-free),
    assert hybrid[NODES[-1]] < hybrid[2] * 2
    # and HiPER tracks the hybrid reference.
    for n in NODES:
        assert 0.5 < hiper[n] / hybrid[n] < 2.0
