"""Job-gateway service benchmarks: warm pools and concurrent-client load.

Two questions, two shapes:

- **Warm vs. cold** (the CI perf-smoke pair): the same ISx digest job
  submitted through a :class:`~repro.service.JobGateway` whose pool keeps a
  constructed runtime warm (``test_service_job_warm``) vs. one that
  constructs and tears down a runtime per job (``test_service_job_cold``,
  ``warm=False`` — exactly what the CLI's one-shot path pays). The pair
  runs on the ``threads`` backend, where cold construction really spawns
  and joins OS worker threads per job; the warm/cold ops-ratio in
  ``BENCH_service.json`` is the pool's reason to exist and must stay
  >= 2x.

- **Load** (``test_service_load_1000_clients``, full runs only): 1000
  client sessions from 50 driver threads against a live UDS server —
  real sockets, real HTTP framing, fair-share admission across 4 tenants,
  duplicate submissions deduping through the result cache. Every session's
  submit->result latency is recorded; p50/p95/p99 land in the entry's
  ``extra_info``. The correctness bar is zero lost and zero duplicated
  results: 1000 distinct job ids, every one terminal-DONE, every digest
  equal to its spec's oracle.

Recorded to ``BENCH_service.json`` via
``python -m repro bench-record --suite service`` (``--fast`` runs just the
warm/cold pair).
"""

import itertools
import os
import tempfile
import threading
import time

from repro.service import JobGateway, ServiceClient, ServiceConfig, ServiceServer

#: ISx job size for the warm/cold pair: small enough that per-job runtime
#: construction dominates the cold path (that is the effect under test),
#: big enough that the job still sorts real keys.
KEYS_PER_PE = 64

_seed = itertools.count(10_000)


#: Jobs per measured burst: the pool's value shows under a *stream* of
#: jobs (back-to-back on one warm entry), so each round submits a burst
#: and waits for all of it; per-job dispatch handoffs amortize out.
BURST = 10


def _bench_gateway_burst(benchmark, warm: bool):
    gw = JobGateway(ServiceConfig(backends=("threads",), pool_size=1,
                                  workers=4, warm=warm)).start()
    try:
        def run():
            jobs = [gw.submit("isx", {"keys_per_pe": KEYS_PER_PE},
                              seed=next(_seed), backend="threads")
                    for _ in range(BURST)]
            for job in jobs:
                assert job.done_event.wait(60.0)
                assert job.state.value == "done", job.error
                assert not job.cache_hit  # fresh seeds: no dedupe

        benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=2)
    finally:
        gw.close()
    benchmark.extra_info.update(
        warm=warm, backend="threads", keys_per_pe=KEYS_PER_PE,
        jobs_per_round=BURST,
        jobs_completed=gw.stats.counter("service", "jobs_completed"))


def test_service_job_warm(benchmark):
    """A burst of jobs on a warm pool: construction paid once at startup."""
    _bench_gateway_burst(benchmark, warm=True)


def test_service_job_cold(benchmark):
    """The same burst spawning/joining a threaded runtime per job (the
    pre-service baseline); the warm pool above must beat this by >= 2x."""
    _bench_gateway_burst(benchmark, warm=False)


# ---------------------------------------------------------------------------
# load test: 1000 concurrent client sessions over a real UDS server
# ---------------------------------------------------------------------------

N_CLIENTS = 1000
N_THREADS = 50
TENANTS = ("alice", "bob", "carol", "dave")
#: (app, params, seed) spec space: 100 distinct specs, so each is submitted
#: ~10x and the duplicates must dedupe through the result cache.
SPEC_SPACE = [("isx", {"keys_per_pe": 32 + 16 * (i % 4)}, i // 4)
              for i in range(100)]


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def test_service_load_1000_clients(benchmark):
    """1000 sessions, 50 keep-alive connections, zero lost/dup results."""
    uds = os.path.join(tempfile.mkdtemp(prefix="repro-svc-"), "svc.sock")
    gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=4, workers=2,
                                  max_queue_per_tenant=512))
    server = ServiceServer(gw, uds=uds).start()

    # Oracle digest per distinct spec, computed through the same service so
    # the comparison is wire-format to wire-format.
    oracle = {}
    with ServiceClient(uds=uds) as c:
        for i, (app, params, seed) in enumerate(SPEC_SPACE):
            job = c.submit(app, params, seed=seed, tenant=TENANTS[0])
            doc = c.wait(job["job_id"], timeout=60.0)
            assert doc["state"] == "done", doc
            oracle[i] = doc["result"]

    latencies = [None] * N_CLIENTS   # session -> submit->result seconds
    job_ids = [None] * N_CLIENTS
    failures = []

    def drive(thread_idx):
        # One persistent connection per driver thread, N_CLIENTS/N_THREADS
        # sessions each; tenants interleave so fair share is exercised.
        with ServiceClient(uds=uds, timeout=120.0) as client:
            for session in range(thread_idx, N_CLIENTS, N_THREADS):
                spec_idx = session % len(SPEC_SPACE)
                app, params, seed = SPEC_SPACE[spec_idx]
                t0 = time.perf_counter()
                try:
                    job = client.submit(
                        app, params, seed=seed,
                        tenant=TENANTS[session % len(TENANTS)])
                    doc = client.wait(job["job_id"], timeout=90.0)
                    latencies[session] = time.perf_counter() - t0
                    job_ids[session] = job["job_id"]
                    if doc["state"] != "done":
                        failures.append((session, doc.get("error")))
                    elif doc["result"] != oracle[spec_idx]:
                        failures.append((session, "result mismatch"))
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append((session, f"{type(exc).__name__}: {exc}"))

    def run_load():
        threads = [threading.Thread(target=drive, args=(i,), daemon=True)
                   for i in range(N_THREADS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        return time.perf_counter() - t0

    try:
        benchmark.pedantic(run_load, rounds=1, iterations=1)

        assert not failures, failures[:10]
        # Zero lost: every session produced a result. Zero duplicated:
        # 1000 sessions -> 1000 distinct job ids (a resubmission is a new
        # job even when the cache answers it).
        assert all(lat is not None for lat in latencies)
        assert len(set(job_ids)) == N_CLIENTS

        lat_sorted = sorted(latencies)
        stats = gw.stats_dict()
        benchmark.extra_info.update(
            clients=N_CLIENTS, threads=N_THREADS, tenants=len(TENANTS),
            distinct_specs=len(SPEC_SPACE),
            p50_ms=round(_percentile(lat_sorted, 0.50) * 1e3, 3),
            p95_ms=round(_percentile(lat_sorted, 0.95) * 1e3, 3),
            p99_ms=round(_percentile(lat_sorted, 0.99) * 1e3, 3),
            max_ms=round(lat_sorted[-1] * 1e3, 3),
            cache_hits=stats["cache"]["hits"],
            jobs_rejected_429=gw.stats.counter("service", "jobs_rejected"),
            cpu_count=os.cpu_count(),
        )
    finally:
        server.stop()
