"""Task-graph benchmarks: cost-model placement and commute reordering.

Two bake-offs, each a recorded pair whose headline lives in ``extra_info``
as *virtual makespans* (the DES clock is the quantity the policies
compete on; wall time just measures the graph machinery's overhead):

- **dmda vs. help-first** (the CI perf-smoke pair): the hetero chains
  workload — big kernels cheap on the GPU variant, small fix-ups cheap on
  CPU — under the calibrating dmda policy vs. the CPU-only help-first
  baseline. Digests must match; ``virtual_makespan`` must show dmda
  beating help-first (the cost model learned the split).

- **commute vs. ordered**: K producers of maximally unequal costs folding
  into one accumulator, with ``commute`` vs. ``write`` accesses on the
  fold. Same sum either way; the commuted run's folds start in readiness
  order and drain the pipeline faster.

Recorded to ``BENCH_taskgraph.json`` via
``python -m repro bench-record --suite taskgraph`` (``--fast`` runs just
the hetero pair).
"""

from repro.exec.sim import SimExecutor
from repro.platform.hwloc import discover, machine
from repro.runtime.runtime import HiperRuntime
from repro.taskgraph import hetero_workload, reduction_workload


def _run(workload):
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=4,
                     with_interconnect=False)
    rt = HiperRuntime(model, ex).start()
    try:
        result = rt.run(workload, name="bench-taskgraph")
    finally:
        rt.shutdown()
        ex.shutdown()
    return result, ex.makespan()


# ---------------------------------------------------------------------------
# placement: dmda vs. help-first on the hetero chains
# ---------------------------------------------------------------------------
def _bench_hetero(benchmark, policy):
    last = {}

    def run():
        result, makespan = _run(hetero_workload(nchains=4, depth=6,
                                                policy=policy))
        last["digest"], last["makespan"] = result[2], makespan

    benchmark.pedantic(run, rounds=10, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        policy=policy, digest=last["digest"],
        virtual_makespan=last["makespan"])


def test_taskgraph_hetero_help_first(benchmark):
    _bench_hetero(benchmark, "help-first")


def test_taskgraph_hetero_dmda(benchmark):
    _bench_hetero(benchmark, "dmda")


# ---------------------------------------------------------------------------
# commute: readiness-order folds vs. the submission-order write chain
# ---------------------------------------------------------------------------
def _bench_reduce(benchmark, commute):
    last = {}

    def run():
        result, makespan = _run(reduction_workload(nproducers=12,
                                                   commute=commute))
        last["total"], last["reordered"] = result[2], result[3]
        last["makespan"] = makespan

    benchmark.pedantic(run, rounds=10, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        commute=commute, total=last["total"], reordered=last["reordered"],
        virtual_makespan=last["makespan"])


def test_taskgraph_reduce_ordered(benchmark):
    _bench_reduce(benchmark, commute=False)


def test_taskgraph_reduce_commute(benchmark):
    _bench_reduce(benchmark, commute=True)
