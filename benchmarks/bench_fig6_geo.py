"""Fig. 6 — GEO weak scaling on Titan (paper §III-B).

Series: hand-optimized MPI+CUDA (blocking transfers in the critical path) and
the HiPER future-based composition; MPI+OpenMP host-only is included for
context (the paper's §II-D walks through all three).

Expected shape (paper): HiPER consistently improves on MPI+CUDA by a small
margin ("~2% on average") by removing blocking CUDA operations; both weak-
scale flat.
"""

from repro.apps.geo import GeoConfig, check_result, geo_main
from repro.bench import Series, cluster_for, sweep
from repro.cuda import cuda_factory
from repro.distrib import spmd_run
from repro.mpi import mpi_factory
from repro.shmem import shmem_factory

NODES = [1, 2, 4, 8, 16]
CFG = GeoConfig(nx=48, ny=48, nz=48, timesteps=4)


def _variant(name):
    def run(nodes):
        res = spmd_run(
            geo_main(name, CFG), cluster_for("titan", nodes, layout="hybrid"),
            module_factories=[mpi_factory(), cuda_factory()],
        )
        if nodes <= 4:  # keep validation cost bounded
            check_result(CFG, res.results)
        return res

    return run


def test_fig6_geo_weak_scaling(sweep_runner):
    sw = sweep_runner(lambda: sweep(
        "Fig 6 — GEO 3-D stencil weak scaling (Titan), time per run",
        [
            Series("mpi_omp", _variant("mpi_omp")),
            Series("mpi_cuda", _variant("mpi_cuda")),
            Series("hiper", _variant("hiper")),
        ],
        NODES,
    ))
    cuda = sw.values["mpi_cuda"]
    hiper = sw.values["hiper"]
    # paper shape: HiPER consistently faster than the blocking MPI+CUDA
    # baseline, by a modest margin.
    gains = [(cuda[n] - hiper[n]) / cuda[n] for n in NODES]
    assert all(g > 0 for g in gains), gains
    mean_gain = sum(gains) / len(gains)
    assert 0.005 < mean_gain < 0.6, mean_gain
    # both weak-scale: no blow-up across the sweep
    assert cuda[NODES[-1]] < cuda[2] * 2
    assert hiper[NODES[-1]] < hiper[2] * 2
