"""Communication-path micro-benchmarks (the overheads behind the comm-stack
overhaul: message coalescing, adaptive polling, buffer pooling).

These measure REAL wall time of the framework machinery — ops/second of the
Python implementation — not virtual time. The headline pair is
``test_small_put_per_message`` vs. ``test_small_put_coalesced``: identical
workloads (small SHMEM puts to remote PEs), one paying a fabric event + mux
dispatch per message, the other per *batch*. The ISx pair repeats the
comparison end-to-end on the Fig. 5 bucket-exchange benchmark at 8 ranks.

Recorded to ``BENCH_comm.json`` via ``python -m repro bench-record --suite
comm`` (append-only ledger, like the scheduler one).
"""

import numpy as np

from repro.apps.isx import IsxConfig, isx_main, validate_isx
from repro.apps.presets import comm_coalesce
from repro.bench.harness import cluster_for
from repro.distrib import spmd_run
from repro.exec.sim import SimExecutor
from repro.net.costmodel import NetworkModel
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.platform import discover, machine
from repro.runtime.future import Promise
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.shmem import shmem_factory
from repro.shmem.backend import ShmemBackend
from repro.shmem.heap import SymmetricHeap
from repro.util.bufpool import BufferPool

N_PUTS = 4000
PUT_ELEMS = 8  # 64-byte payloads: the fine-grained PGAS regime


def _shmem_world(n=2):
    """Raw backend world (no runtime): SimExecutor + fabric + per-PE
    backends, the same harness the backend unit tests use."""
    ex = SimExecutor()
    fab = SimFabric(ex, n, NetworkModel())
    sigs: dict = {}
    peers: dict = {}
    backends = []
    for r in range(n):
        mux = FabricMux(fab, r)
        heap = SymmetricHeap(r, shared_signatures=sigs)
        backend = ShmemBackend(mux, r, heap, peers)
        # Size the snapshot pool to the round so steady-state rounds measure
        # the comm path, not allocator churn (default cap is tuned for apps).
        backend.pool = BufferPool(max_per_class=N_PUTS + 8)
        backends.append(backend)
    windows = [b.heap.allocate(PUT_ELEMS, dtype=np.int64) for b in backends]
    return ex, backends, windows


def test_small_put_per_message(benchmark):
    """Baseline: every put is one fabric transmit + one mux dispatch."""
    ex, backends, windows = _shmem_world()
    data = np.arange(PUT_ELEMS, dtype=np.int64)

    def run():
        for _ in range(N_PUTS):
            backends[0].put(windows[1], data, 1)
        ex.drain()

    run()  # warm the pool's free list; timed rounds then run steady-state
    benchmark(run)
    benchmark.extra_info["puts_per_call"] = N_PUTS
    benchmark.extra_info["payload_bytes"] = int(data.nbytes)


def test_small_put_coalesced(benchmark):
    """Same puts, coalesced: one transmit/dispatch per 32-message batch."""
    ex, backends, windows = _shmem_world()
    backends[0].enable_coalescing(comm_coalesce())
    data = np.arange(PUT_ELEMS, dtype=np.int64)

    def run():
        for _ in range(N_PUTS):
            backends[0].put(windows[1], data, 1)
        backends[0].mux.flush("shmem")
        ex.drain()

    run()  # warm the pool's free list; timed rounds then run steady-state
    benchmark(run)
    benchmark.extra_info["puts_per_call"] = N_PUTS
    benchmark.extra_info["payload_bytes"] = int(data.nbytes)
    co = backends[0].mux.coalescer("shmem")
    benchmark.extra_info["batches_sent"] = co.batches_sent
    benchmark.extra_info["msgs_coalesced"] = co.msgs_coalesced


def test_polling_sweep_cost(benchmark):
    """Cost of one polling sweep over a pending list that completes nothing
    (the quiet-stretch case adaptive backoff exists to amortize)."""
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=2)
    rt = HiperRuntime(model, ex).start()
    svc = PollingService(rt, rt.interconnect, module="mpi")
    for _ in range(256):
        svc._pending.append((lambda: (False, None), Promise()))

    def run():
        for _ in range(100):
            svc._sweep()

    benchmark(run)
    benchmark.extra_info["pending_ops"] = 256
    benchmark.extra_info["sweeps_per_call"] = 100


def test_bufpool_take_release(benchmark):
    """Pooled snapshot + release cycle (vs. an ndarray.copy per message)."""
    pool = BufferPool()
    data = np.arange(PUT_ELEMS, dtype=np.int64)
    pool.take_copy(data).release()  # warm the size class

    def run():
        for _ in range(1000):
            pool.take_copy(data).release()

    benchmark(run)
    benchmark.extra_info["cycles_per_call"] = 1000
    benchmark.extra_info["hit_rate"] = round(pool.hit_rate, 4)


def _isx_8rank(coalesce):
    cfg = IsxConfig(keys_per_pe=1 << 10, byte_scale=1 << 7)
    factory = (shmem_factory(coalesce=comm_coalesce()) if coalesce
               else shmem_factory())
    cluster = cluster_for("titan", 8, layout="hybrid", workers_cap=2)
    res = spmd_run(isx_main("hiper", cfg), cluster,
                   module_factories=[factory])
    validate_isx(cfg, res.nranks, res.results)
    return res


def test_isx_exchange_8rank_per_message(benchmark):
    """End-to-end Fig. 5 ISx (hiper variant, 8 ranks), per-message comms."""
    res = benchmark(_isx_8rank, False)
    benchmark.extra_info["ranks"] = 8
    benchmark.extra_info["virtual_makespan_s"] = res.makespan
    benchmark.extra_info["fabric_messages"] = res.fabric.messages_sent


def test_isx_exchange_8rank_coalesced(benchmark):
    """Same run with the shmem channel coalesced (comm_coalesce preset)."""
    res = benchmark(_isx_8rank, True)
    benchmark.extra_info["ranks"] = 8
    benchmark.extra_info["virtual_makespan_s"] = res.makespan
    benchmark.extra_info["fabric_messages"] = res.fabric.messages_sent
