"""Ablations over the design choices DESIGN.md calls out (paper §II/§IV/§V):

1. **Communication funneling vs a dedicated comm thread** — the paper's §IV
   argues dedicated communication threads "hurt the performance of more
   computationally-bound applications". We compare the shipped default
   (Interconnect place on one worker's *shared* paths) against the
   related-work-style ``dedicated_comm`` policy (that worker does nothing
   else) on GEO, a compute-heavy workload.
2. **Eager completion signaling vs pure interval polling** — the paper's
   module flow polls pending operations periodically (§II-C1); the backend's
   progress hook lets the poller run as completions land. We measure the
   latency cost of pure interval polling on an MPI ping-pong.
3. **Steal-path locality policy** — default (hierarchy-aware) vs flat paths
   on an imbalanced task soup; paths are the paper's load-balancing-policy
   mechanism (§II-B3).
4. **Task dispatch overhead sensitivity** — the generalized work-stealing
   runtime adds per-task costs; sweep the simulated dispatch overhead and
   observe UTS throughput (the fine-grained app) degrade gracefully.
"""

import pytest

from repro.apps.geo import GeoConfig, geo_main
from repro.apps.uts import UtsConfig, sequential_count, uts_main
from repro.bench import cluster_for
from repro.cuda import cuda_factory
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.shmem import shmem_factory


def test_ablation_funneled_vs_dedicated_comm_worker(benchmark):
    cfg = GeoConfig(nx=32, ny=32, nz=32, timesteps=4)
    out = {}

    def run():
        for policy in ("default", "dedicated_comm"):
            cluster = cluster_for("titan", 4, layout="hybrid")
            cluster.path_policy = policy
            res = spmd_run(geo_main("mpi_omp", cfg), cluster,
                           module_factories=[mpi_factory(), cuda_factory()])
            out[policy] = res.makespan * 1e3

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nGEO mpi_omp, 4 nodes: funneled={out['default']:.4f} ms, "
          f"dedicated comm worker={out['dedicated_comm']:.4f} ms")
    benchmark.extra_info.update(out)
    # Losing a compute worker to communication costs a compute-bound app
    # real time (paper §IV's critique of dedicated comm threads).
    assert out["dedicated_comm"] > out["default"] * 1.02


def test_ablation_eager_kick_vs_interval_polling(benchmark):
    """Ping-pong latency under the paper's pure interval polling vs the
    event-kicked poller."""
    out = {}

    def make_main():
        def main(ctx):
            me = ctx.rank
            other = 1 - me
            for i in range(50):
                if me == 0:
                    yield ctx.mpi.isend(i, other, tag=i)
                    yield ctx.mpi.irecv(src=other, tag=i)
                else:
                    yield ctx.mpi.irecv(src=other, tag=i)
                    yield ctx.mpi.isend(i, other, tag=i)
            return None

        return main

    def run():
        for eager in (True, False):
            cluster = ClusterConfig(nodes=2, ranks_per_node=1,
                                    workers_per_rank=2,
                                    machine=machine("titan"))
            res = spmd_run(
                make_main(), cluster,
                module_factories=[mpi_factory(eager_kick=eager,
                                              poll_interval=5e-6)],
            )
            out["eager" if eager else "interval"] = res.makespan * 1e3

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n50x ping-pong: eager-kick={out['eager']:.4f} ms, "
          f"interval-poll={out['interval']:.4f} ms")
    benchmark.extra_info.update(out)
    assert out["interval"] > out["eager"]


def test_ablation_platform_detail(benchmark):
    """Imbalanced task soup under three platform-model granularities
    (paper §II-A: the model need not mirror hardware one-to-one). More
    places mean longer pop/steal paths; load balance must hold regardless."""
    from repro.runtime.api import charge, finish, forasync

    out = {}

    def main(ctx):
        finish(lambda: forasync(
            256, lambda i: charge(((i * 37) % 13 + 1) * 1e-5), chunks=256))
        return None

    def run():
        for detail in ("flat", "numa", "full"):
            cluster = ClusterConfig(nodes=1, ranks_per_node=1,
                                    workers_per_rank=8,
                                    machine=machine("edison"),
                                    path_policy="default", detail=detail)
            res = spmd_run(main, cluster, module_factories=[])
            out[detail] = res.makespan * 1e3

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ntask soup, 8 workers, platform detail: "
          + ", ".join(f"{k}={v:.4f} ms" for k, v in out.items()))
    benchmark.extra_info.update(out)
    ideal = 256 * 7e-5 / 8 * 1e3  # mean cost x n / workers
    for v in out.values():
        assert v < ideal * 1.5
    # granularity must not change the schedule quality materially
    assert max(out.values()) < min(out.values()) * 1.3


@pytest.mark.parametrize("overhead_us", [0.0, 0.5, 2.0])
def test_ablation_task_dispatch_overhead(benchmark, overhead_us):
    cfg = UtsConfig(root_children=300, mean_children=0.9, seed=2)
    oracle = sequential_count(cfg)

    def run():
        cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=4,
                                machine=machine("titan"),
                                task_overhead=overhead_us * 1e-6)
        res = spmd_run(uts_main("hiper", cfg), cluster,
                       module_factories=[shmem_factory()])
        assert sum(res.results) == oracle
        benchmark.extra_info["makespan_ms"] = res.makespan * 1e3

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nUTS hiper, dispatch overhead {overhead_us}us: "
          f"{benchmark.extra_info['makespan_ms']:.3f} ms")
