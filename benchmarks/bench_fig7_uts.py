"""Fig. 7 — UTS strong scaling (paper §III-C1).

Series: OpenSHMEM+OpenMP (lock-based distributed balancing),
OpenSHMEM+OpenMP Tasks (coarse-grain taskwait rounds), and HiPER/AsyncSHMEM.
Strong scaling: one T1XXL-shaped geometric tree (scaled, DESIGN.md §2)
searched by growing node counts.

Expected shape (paper): all three comparable at small scale;
OpenSHMEM+OpenMP degrades as lock contention from distributed balancing
grows; the Tasks variant trails HiPER due to its coarse synchronization;
HiPER scales best.
"""

from repro.apps.uts import UtsConfig, sequential_count, uts_main
from repro.bench import Series, cluster_for, sweep
from repro.distrib import spmd_run
from repro.shmem import shmem_factory

NODES = [1, 2, 4, 8, 16, 32]
CFG = UtsConfig(root_children=3000, mean_children=0.97, seed=1,
                node_cost=2e-6)
_ORACLE = sequential_count(CFG)


def _variant(name):
    def run(nodes):
        res = spmd_run(
            uts_main(name, CFG), cluster_for("titan", nodes, layout="hybrid"),
            module_factories=[shmem_factory()],
        )
        total = sum(res.results)
        assert total == _ORACLE, f"{name}@{nodes}: {total} != {_ORACLE}"
        return res

    return run


def test_fig7_uts_strong_scaling(sweep_runner):
    sw = sweep_runner(lambda: sweep(
        f"Fig 7 — UTS strong scaling (tree={_ORACLE} nodes), execution time",
        [
            Series("shmem_omp", _variant("shmem_omp")),
            Series("omp_tasks", _variant("omp_tasks")),
            Series("hiper_asyncshmem", _variant("hiper")),
        ],
        NODES,
    ))
    omp = sw.values["shmem_omp"]
    tasks = sw.values["omp_tasks"]
    hiper = sw.values["hiper_asyncshmem"]
    last = NODES[-1]
    # paper shape: comparable at small scale...
    assert 0.5 < omp[1] / hiper[1] < 2.0
    # ...lock-based balancing degrades relative to HiPER at scale,
    assert omp[last] > hiper[last] * 1.1
    # and HiPER is the best (or ties) at the largest point.
    assert hiper[last] <= min(omp[last], tasks[last]) * 1.05
    # HiPER keeps strong-scaling further than the lock-based reference:
    assert hiper[last] < hiper[1]
