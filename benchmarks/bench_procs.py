"""Multiprocess SPMD backend benchmarks: does real parallelism pay?

Unlike the figure benchmarks (virtual time) and the comm micro-benchmarks
(single-process machinery overhead), these measure the one thing only the
procs backend can deliver: REAL wall-clock throughput from running ranks in
separate OS processes with no shared GIL. The headline pair is the paper's
Fig. 5 weak-scaling shape — ``test_isx_procs_1rank`` vs.
``test_isx_procs_4ranks`` sort the *same keys per PE* (so the 4-rank run
handles 4x the keys), and the comparison that matters is aggregate
throughput, recorded as ``keys_per_sec`` in each entry's ``extra_info``:

- on a host with >= 4 cores, the 4-rank run must exceed 1.5x the 1-rank
  throughput (real parallel speedup, after paying the full launch + socket
  fabric + shared-heap overhead);
- on fewer cores the ranks time-slice, so the honest ceiling is 1.0x —
  ``cpu_count`` is recorded alongside so a ledger entry is interpretable on
  its own. (A single-core container sustaining ~0.8x efficiency while
  multiplexing 4 full rank processes is the overhead statement.)

``test_procs_launch_roundtrip`` isolates the fixed floor every procs run
pays: launch + rendezvous + one barrier + teardown of a do-nothing 2-rank
job. Recorded to ``BENCH_procs.json`` via ``python -m repro bench-record
--suite procs``.
"""

import os

from repro.exec.procs import procs_run
from repro.verify.spmd_workloads import isx_exchange_factory

ISX_FACTORY = "repro.verify.spmd_workloads:isx_exchange_factory"

#: Keys per PE (weak scaling: total = nranks * KEYS_PER_PE). Sized so sort
#: dominates the ~0.2s launch floor while a 3-round pair stays CI-friendly.
KEYS_PER_PE = 1 << 20


def noop_factory():
    def main(ctx):
        yield ctx.shmem.barrier_all_async()
        return ctx.rank

    return main


def _run_isx(nranks: int):
    res = procs_run(
        ISX_FACTORY, kwargs={"keys_per_pe": KEYS_PER_PE}, nranks=nranks,
        heap_bytes=1 << 27, timeout=300.0,
    )
    total = sum(count for count, _sha in res.results)
    assert total == nranks * KEYS_PER_PE
    return res, total


def _bench_isx(benchmark, nranks: int):
    totals = []

    def run():
        _res, total = _run_isx(nranks)
        totals.append(total)

    benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        nranks=nranks,
        keys_per_pe=KEYS_PER_PE,
        total_keys=totals[-1],
        keys_per_sec=round(totals[-1] / mean, 1),
        cpu_count=os.cpu_count(),
    )


def test_isx_procs_1rank(benchmark):
    """Baseline: one rank process sorting KEYS_PER_PE keys."""
    _bench_isx(benchmark, 1)


def test_isx_procs_4ranks(benchmark):
    """4 rank processes, 4x the keys: on >= 4 cores the keys_per_sec here
    must beat the 1-rank entry by > 1.5x."""
    _bench_isx(benchmark, 4)


def test_procs_launch_roundtrip(benchmark):
    """Fixed cost floor: launch, rendezvous, one barrier, teardown."""

    def run():
        res = procs_run(noop_factory, nranks=2, timeout=60.0)
        assert sorted(res.results) == [0, 1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(nranks=2, cpu_count=os.cpu_count())
