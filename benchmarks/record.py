"""Record runtime micro-benchmark results into the committed perf ledger.

Thin script wrapper over ``python -m repro bench-record`` for running from a
checkout without installing::

    PYTHONPATH=src python benchmarks/record.py --label "my change"
    PYTHONPATH=src python benchmarks/record.py --fast   # CI smoke subset

See :mod:`repro.bench.record` for the ledger format.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench-record"] + sys.argv[1:]))
