"""Resilience subsystem: deterministic fault injection, retry/timeout
policies, and checkpoint-driven recovery.

Covers the three layers of ``repro.resilience`` (ISSUE: tentpole):

- injection — seeded :class:`FaultPlan` verdicts for message/storage/task
  faults, timed place/worker failures;
- policy — :class:`Backoff` / :func:`with_timeout` / :func:`async_retry` and
  per-channel message retransmission;
- recovery — replay/kill semantics of ``fail_place``/``fail_worker``, and the
  golden acceptance scenario: an ISx-style run that loses a place mid-run and
  completes with the no-fault answer after checkpoint restore.
"""

import json

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.io import SimStore, StorageError, checkpoint_factory
from repro.net.costmodel import NetworkModel
from repro.net.fabric import CorruptedPayload, SimFabric
from repro.net.mux import FabricMux
from repro.platform import MachineSpec, discover, machine
from repro.resilience import (PRESETS, Backoff, FaultError, FaultInjector,
                              FaultPlan, PlaceFailure, RetryPolicy,
                              TimeoutExpired, async_retry, with_timeout)
from repro.runtime.api import charge, finish, forasync
from repro.runtime.finish import FinishScope
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task
from repro.shmem import shmem_factory
from repro.util.errors import CommError, ConfigError

NVM_MACHINE = MachineSpec(name="nvm-box", sockets=1, cores_per_socket=4,
                          nvm_bytes=1 << 30)


def nvm_cluster(nodes=1, workers=4, **kw):
    return ClusterConfig(nodes=nodes, ranks_per_node=1,
                         workers_per_rank=workers, machine=NVM_MACHINE, **kw)


def numa_rt(num_workers=2):
    """A started runtime with a second place (socket0.l3) to fail."""
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=num_workers)
    rt = HiperRuntime(model, ex).start()
    return ex, model, rt


# ---------------------------------------------------------------------------
# policy layer
# ---------------------------------------------------------------------------
class TestBackoff:
    def test_exponential_growth_and_cap(self):
        bo = Backoff(base=1e-3, factor=2.0, max_delay=5e-3)
        assert bo.delay(0) == pytest.approx(1e-3)
        assert bo.delay(1) == pytest.approx(2e-3)
        assert bo.delay(2) == pytest.approx(4e-3)
        assert bo.delay(3) == pytest.approx(5e-3)  # capped
        assert bo.delay(10) == pytest.approx(5e-3)

    def test_jitter_bounded_and_deterministic(self):
        a = Backoff(base=1e-3, jitter=0.5, seed=42)
        b = Backoff(base=1e-3, jitter=0.5, seed=42)
        da = [a.delay(i) for i in range(20)]
        db = [b.delay(i) for i in range(20)]
        assert da == db  # same seed, same schedule
        for i, d in enumerate(da):
            pure = min(1e-3 * 2.0 ** i, 0.1)
            assert pure <= d <= pure * 1.5

    def test_different_seeds_decorrelate(self):
        da = [Backoff(jitter=1.0, seed=1).delay(i) for i in range(8)]
        db = [Backoff(jitter=1.0, seed=2).delay(i) for i in range(8)]
        assert da != db

    def test_validation(self):
        with pytest.raises(ConfigError):
            Backoff(base=-1.0)
        with pytest.raises(ConfigError):
            Backoff(factor=0.5)
        with pytest.raises(ConfigError):
            Backoff(jitter=2.0)
        with pytest.raises(ConfigError):
            Backoff().delay(-1)


class TestRetryPolicy:
    def test_defaults(self):
        p = RetryPolicy()
        assert p.max_attempts == 3
        assert isinstance(p.backoff, Backoff)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)


class TestWithTimeout:
    def test_expires(self, sim_rt):
        def main():
            p = Promise()
            f = with_timeout(p.get_future(), 1e-4, name="never")
            with pytest.raises(TimeoutExpired) as ei:
                f.get()
            assert ei.value.timeout == pytest.approx(1e-4)
            return True

        assert sim_rt.run(main)

    def test_value_wins_the_race(self, sim_rt):
        def main():
            p = Promise()
            sim_rt.executor.call_later(1e-5, lambda: p.put("fast"))
            return with_timeout(p.get_future(), 1e-3).get()

        assert sim_rt.run(main) == "fast"

    def test_exception_propagates(self, sim_rt):
        def main():
            p = Promise()
            sim_rt.executor.call_later(
                1e-5, lambda: p.put_exception(FaultError("boom")))
            f = with_timeout(p.get_future(), 1e-3)
            with pytest.raises(FaultError, match="boom"):
                f.get()
            return True

        assert sim_rt.run(main)

    def test_late_arrival_after_expiry_is_ignored(self, sim_rt):
        def main():
            p = Promise()
            f = with_timeout(p.get_future(), 1e-5)
            with pytest.raises(TimeoutExpired):
                f.get()
            p.put("too late")  # must not disturb the settled result
            with pytest.raises(TimeoutExpired):
                f.value()
            return True

        assert sim_rt.run(main)

    def test_negative_timeout_rejected(self, sim_rt):
        def main():
            with pytest.raises(ConfigError):
                with_timeout(Promise().get_future(), -1.0)
            return True

        assert sim_rt.run(main)


class TestAsyncRetry:
    def test_first_try_success(self, sim_rt):
        def main():
            return async_retry(lambda: "ok", attempts=3).get()

        assert sim_rt.run(main) == "ok"
        assert sim_rt.stats.counter("resilience", "retries") == 0

    def test_fail_twice_then_succeed(self, sim_rt):
        calls = []

        def body():
            calls.append(1)
            if len(calls) < 3:
                raise FaultError(f"attempt {len(calls)} down")
            return "recovered"

        def main():
            return async_retry(body, attempts=5,
                               backoff=Backoff(base=1e-6)).get()

        assert sim_rt.run(main) == "recovered"
        assert len(calls) == 3
        assert sim_rt.stats.counter("resilience", "retries") == 2
        assert sim_rt.stats.counter("resilience", "retries_exhausted") == 0
        ttr = sim_rt.stats.series["resilience/time_to_recovery"]
        assert len(ttr) == 1 and ttr[0][1] > 0

    def test_attempts_exhausted(self, sim_rt):
        def body():
            raise FaultError("always down")

        def main():
            f = async_retry(body, attempts=3, backoff=Backoff(base=1e-6))
            with pytest.raises(FaultError, match="always down"):
                f.get()
            return True

        assert sim_rt.run(main)
        assert sim_rt.stats.counter("resilience", "retries") == 2
        assert sim_rt.stats.counter("resilience", "retries_exhausted") == 1

    def test_non_retryable_fails_immediately(self, sim_rt):
        calls = []

        def body():
            calls.append(1)
            raise ValueError("not a fault")

        def main():
            f = async_retry(body, attempts=5, retry_on=FaultError)
            with pytest.raises(ValueError):
                f.get()
            return True

        assert sim_rt.run(main)
        assert len(calls) == 1
        assert sim_rt.stats.counter("resilience", "retries") == 0

    def test_enclosing_finish_waits_across_backoff_gaps(self, sim_rt):
        """The caller's finish scope must stay open while no attempt task
        exists (between a failure and the backed-off respawn)."""
        state = {"calls": 0, "done": False}

        def body():
            state["calls"] += 1
            if state["calls"] < 2:
                raise FaultError("transient")
            state["done"] = True

        def main():
            finish(lambda: async_retry(body, attempts=3,
                                       backoff=Backoff(base=1e-4)))
            # finish returned: the retried attempt must have completed.
            return state["done"]

        assert sim_rt.run(main)
        assert state["calls"] == 2

    def test_validation(self, sim_rt):
        def main():
            with pytest.raises(ConfigError):
                async_retry(lambda: None, attempts=0)
            return True

        assert sim_rt.run(main)


# ---------------------------------------------------------------------------
# fault-plan parsing
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown kind"):
            FaultPlan.from_spec({"faults": [{"kind": "meteor_strike"}]})

    def test_prob_range_checked(self):
        with pytest.raises(ConfigError, match="prob"):
            FaultPlan.from_spec(
                {"faults": [{"kind": "message_drop", "prob": 1.5}]})

    def test_timed_fault_requires_at(self):
        with pytest.raises(ConfigError, match="'at'"):
            FaultPlan.from_spec({"faults": [{"kind": "place_fail"}]})

    def test_task_fail_requires_name(self):
        with pytest.raises(ConfigError, match="name"):
            FaultPlan.from_spec({"faults": [{"kind": "task_fail"}]})

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="preset"):
            FaultPlan.preset("armageddon")

    def test_presets_parse(self):
        for name in PRESETS:
            plan = FaultPlan.preset(name, seed=3)
            assert plan.seed == 3
            assert plan.rules

    def test_spec_seed_and_override(self):
        spec = {"seed": 9, "faults": [{"kind": "message_drop", "prob": 0.1}]}
        assert FaultPlan.from_spec(spec).seed == 9
        assert FaultPlan.from_spec(spec, seed=4).seed == 4

    def test_retry_config_parsed(self):
        plan = FaultPlan.from_spec({
            "retry": {"attempts": 7, "base": 2e-5, "jitter": 0.5},
            "faults": [],
        })
        assert plan.retry.max_attempts == 7
        assert plan.retry.backoff.base == pytest.approx(2e-5)

    def test_load_json_file(self, tmp_path):
        p = tmp_path / "plan.json"
        p.write_text(json.dumps(
            {"seed": 5, "faults": [{"kind": "message_delay", "prob": 0.2,
                                    "extra": 1e-5, "max_faults": 3}]}))
        plan = FaultPlan.load(str(p))
        assert plan.seed == 5
        assert plan.rules[0].kind == "message_delay"
        assert plan.rules[0].max_faults == 3

    def test_load_resolves_preset_names(self):
        plan = FaultPlan.load("drop", seed=11)
        assert plan.seed == 11
        assert plan.rules[0].kind == "message_drop"


# ---------------------------------------------------------------------------
# message faults at the fabric / mux
# ---------------------------------------------------------------------------
def make_fabric(nranks=2, **kw):
    ex = SimExecutor()
    fab = SimFabric(ex, nranks, NetworkModel(), **kw)
    return ex, fab


class TestMessageFaults:
    def test_drop_completes_injection_without_delivery(self):
        ex, fab = make_fabric()
        seen, injected = [], []
        fab.register_sink(1, lambda s, p, t: seen.append(p))
        fab.fault_hook = lambda src, dst, n, p: ("drop",)
        fab.transmit(0, 1, 100, "gone",
                     on_injected=lambda t: injected.append(t))
        ex.drain()
        assert seen == []
        assert len(injected) == 1  # local completion still happens
        assert fab.messages_dropped == 1

    def test_delay_adds_extra_latency(self):
        def delivery_time(hook):
            ex, fab = make_fabric()
            times = []
            fab.register_sink(1, lambda s, p, t: times.append(t))
            fab.fault_hook = hook
            fab.transmit(0, 1, 100, "msg")
            ex.drain()
            assert len(times) == 1
            return fab, times[0]

        _, base = delivery_time(None)
        fab, slow = delivery_time(lambda src, dst, n, p: ("delay", 7e-3))
        assert slow == pytest.approx(base + 7e-3, rel=1e-6)
        assert fab.messages_delayed == 1

    def test_corrupt_wraps_payload(self):
        ex, fab = make_fabric()
        seen = []
        fab.register_sink(1, lambda s, p, t: seen.append(p))
        fab.fault_hook = lambda src, dst, n, p: ("corrupt",)
        fab.transmit(0, 1, 100, "garbled")
        ex.drain()
        assert len(seen) == 1
        assert isinstance(seen[0], CorruptedPayload)
        assert seen[0].original == "garbled"
        assert fab.messages_corrupted == 1

    def test_drop_does_not_advance_fifo_clamp(self):
        """A later message may legitimately arrive where a dropped one never
        did — the pairwise-FIFO floor must not move for dropped messages."""
        ex, fab = make_fabric()
        seen = []
        fab.register_sink(1, lambda s, p, t: seen.append(p))
        verdicts = iter([("drop",), None])
        fab.fault_hook = lambda *a: next(verdicts)
        fab.transmit(0, 1, 100, "lost")
        fab.transmit(0, 1, 100, "arrives")
        ex.drain()
        assert seen == ["arrives"]

    def test_mux_discards_corrupted_payloads(self):
        ex, fab = make_fabric()
        got = []
        m0 = FabricMux(fab, 0)
        m1 = FabricMux(fab, 1)
        m0.register_channel("app", lambda s, p, t: None)
        m1.register_channel("app", lambda s, p, t: got.append(p))
        fab.fault_hook = lambda *a: ("corrupt",)
        m0.transmit(1, "app", "checksum-fails", 64)
        ex.drain()
        assert got == []  # discarded at the receive side, like a bad CRC

    def test_retry_policy_redelivers_dropped_message(self):
        ex, fab = make_fabric()
        got = []
        m0 = FabricMux(fab, 0)
        m1 = FabricMux(fab, 1)
        m0.register_channel("app", lambda s, p, t: None)
        m1.register_channel("app", lambda s, p, t: got.append(p))
        m0.set_retry_policy("app", RetryPolicy(
            max_attempts=4, backoff=Backoff(base=1e-6)))
        drops = [("drop",), ("drop",), None]  # two losses, then through
        fab.fault_hook = lambda *a: drops.pop(0) if drops else None
        injected = []
        m0.transmit(1, "app", "persistent", 64,
                    on_injected=lambda t: injected.append(t))
        ex.drain()
        assert got == ["persistent"]
        assert len(injected) == 1  # injection callback fires exactly once
        assert fab.messages_dropped == 2

    def test_retry_policy_exhaustion_gives_up(self):
        ex, fab = make_fabric()
        got = []
        m0 = FabricMux(fab, 0)
        m1 = FabricMux(fab, 1)
        m0.register_channel("app", lambda s, p, t: None)
        m1.register_channel("app", lambda s, p, t: got.append(p))
        m0.set_retry_policy("app", RetryPolicy(
            max_attempts=2, backoff=Backoff(base=1e-6)))
        fab.fault_hook = lambda *a: ("drop",)
        m0.transmit(1, "app", "doomed", 64)
        ex.drain()
        assert got == []
        assert fab.messages_dropped == 2  # original + one retry

    def test_retry_policy_unregistered_channel_rejected(self):
        ex, fab = make_fabric()
        m0 = FabricMux(fab, 0)
        with pytest.raises(CommError, match="unregistered"):
            m0.set_retry_policy("ghost", RetryPolicy())

    def test_oversized_payload_rejected(self):
        ex, fab = make_fabric(max_message_bytes=1024)
        fab.register_sink(1, lambda s, p, t: None)
        fab.transmit(0, 1, 1024, "fits")
        with pytest.raises(CommError, match="exceeds fabric limit"):
            fab.transmit(0, 1, 1025, "too big")

    def test_bad_message_limit_rejected(self):
        with pytest.raises(ConfigError):
            make_fabric(max_message_bytes=0)

    def test_injector_verdicts_respect_channel_filter_and_budget(self):
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "message_drop", "prob": 1.0, "channel": "mpi",
             "max_faults": 2},
        ]})
        ex, fab = make_fabric()
        inj = FaultInjector(plan).attach(ex, fab)
        sink = []
        fab.register_sink(1, lambda s, p, t: sink.append(p))
        fab.transmit(0, 1, 10, ("shmem", "other-channel"))  # filter miss
        fab.transmit(0, 1, 10, ("mpi", "a"))                # dropped
        fab.transmit(0, 1, 10, ("mpi", "b"))                # dropped
        fab.transmit(0, 1, 10, ("mpi", "c"))                # budget spent
        ex.drain()
        assert sink == [("shmem", "other-channel"), ("mpi", "c")]
        assert inj.counts() == {"message_drop": 2}


# ---------------------------------------------------------------------------
# storage + task faults
# ---------------------------------------------------------------------------
class TestStorageFaults:
    def make_store(self):
        ex = SimExecutor()
        return SimStore(ex, name="nvm", capacity_bytes=1 << 20,
                        bandwidth=1e9, latency=0.0)

    def test_injected_write_failure_preserves_previous_object(self):
        store = self.make_store()
        store.write("a", np.arange(8, dtype=np.float64))
        store.executor.drain()
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "storage_fail", "prob": 1.0, "max_faults": 1}]})
        inj = FaultInjector(plan).attach(store.executor)
        inj.attach_store(store)
        with pytest.raises(StorageError, match="injected write failure"):
            store.write("a", np.zeros(8))
        store.executor.drain()
        assert store.write_faults == 1
        # The pre-fault object is intact: failed writes mutate nothing.
        op = store.read("a", np.float64, (8,))
        store.executor.drain()
        assert np.array_equal(op.value, np.arange(8, dtype=np.float64))
        store.write("a", np.zeros(8))  # budget exhausted: succeeds
        store.executor.drain()
        assert inj.counts() == {"storage_fail": 1}

    def test_device_filter(self):
        store = self.make_store()  # named "nvm"
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "storage_fail", "prob": 1.0, "device": "disk0"}]})
        FaultInjector(plan).attach(store.executor).attach_store(store)
        store.write("k", np.zeros(4))  # filter miss: no fault
        store.executor.drain()
        assert store.write_faults == 0


class TestTaskFaults:
    def test_named_task_killed(self, sim_rt):
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "task_fail", "name": "victim", "max_faults": 1}]})
        inj = FaultInjector(plan).attach(sim_rt.executor)
        inj.arm_runtime(sim_rt)
        ran = []

        def main():
            f = sim_rt.spawn(lambda: ran.append(1), name="victim",
                             return_future=True)
            with pytest.raises(FaultError, match="injected failure"):
                f.get()
            # Budget spent: the same name now runs clean.
            sim_rt.spawn(lambda: ran.append(2), name="victim",
                         return_future=True).get()
            return True

        assert sim_rt.run(main)
        assert ran == [2]
        assert [k for _, k, _ in inj.events] == ["task_fail"]

    def test_other_tasks_untouched(self, sim_rt):
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "task_fail", "name": "victim"}]})
        FaultInjector(plan).attach(sim_rt.executor).arm_runtime(sim_rt)

        def main():
            return sim_rt.spawn(lambda: "fine", name="bystander",
                                return_future=True).get()

        assert sim_rt.run(main) == "fine"

    def test_async_retry_rides_through_injected_task_faults(self, sim_rt):
        """Rule names match async_retry's '<base>#<attempt>' task names, so
        a bounded task_fail budget is absorbed by the retry loop."""
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "task_fail", "name": "flaky", "max_faults": 2}]})
        FaultInjector(plan).attach(sim_rt.executor).arm_runtime(sim_rt)
        calls = []

        def main():
            return async_retry(lambda: calls.append(1) or "ok", attempts=5,
                               backoff=Backoff(base=1e-6),
                               name="flaky").get()

        assert sim_rt.run(main) == "ok"
        assert len(calls) == 1  # attempts 0 and 1 died before the body ran
        assert sim_rt.stats.counter("resilience", "retries") == 2


# ---------------------------------------------------------------------------
# place / worker failure and recovery
# ---------------------------------------------------------------------------
class TestFailPlace:
    def test_replays_unstarted_tasks_on_fallback(self):
        ex, model, rt = numa_rt(num_workers=2)
        l3 = model.place("socket0.l3")
        ran = []

        def main():
            counts = {}

            def body():
                for i in range(6):
                    rt.spawn(lambda i=i: ran.append(i), place=l3)
                counts["rk"] = ex.fail_place(rt, l3)

            finish(body)
            return counts["rk"]

        replayed, killed = rt.run(main)
        assert (replayed, killed) == (6, 0)
        assert sorted(ran) == list(range(6))
        assert rt.stats.counter("resilience", "tasks_replayed") == 6
        assert rt.stats.counter("resilience", "place_failures") == 1
        rt.shutdown()
        ex.shutdown()

    def test_future_spawns_redirected_to_fallback(self):
        ex, model, rt = numa_rt()
        l3 = model.place("socket0.l3")

        def main():
            ex.fail_place(rt, l3)
            # Spawning at the dead place must transparently land on sysmem.
            return rt.spawn(lambda: "landed", place=l3,
                            return_future=True).get()

        assert rt.run(main) == "landed"
        rt.shutdown()
        ex.shutdown()

    def test_suspended_coroutine_killed_on_resume(self):
        ex, model, rt = numa_rt()
        l3 = model.place("socket0.l3")
        out = {}

        def main():
            gate = Promise()

            def co():
                out["started"] = True
                yield gate.get_future()
                out["resumed"] = True  # must never happen
                return "survived"

            fut = rt.spawn(co, place=l3, return_future=True)
            ex.call_later(1e-5, lambda: ex.fail_place(rt, l3))
            ex.call_later(2e-5, lambda: gate.put(1))
            with pytest.raises(PlaceFailure, match="failed while task"):
                fut.get()
            return True

        assert rt.run(main)
        assert out.get("started") and "resumed" not in out
        assert rt.stats.counter("resilience", "tasks_killed") == 1
        rt.shutdown()
        ex.shutdown()

    def test_drain_kills_started_coroutines_in_deque(self):
        """A coroutine continuation sitting READY in the dead place's deque
        is failed with PlaceFailure at drain time, and its promise plus
        finish scope are both discharged."""
        ex, model, rt = numa_rt()
        l3 = model.place("socket0.l3")
        scope = FinishScope(name="t", lock_cls=ex.lock_class)
        p = Promise(name="victim")
        task = Task(lambda: None, place=l3, created_by=0, scope=scope,
                    result_promise=p, name="half-done")
        task.gen = iter(())  # marks the body as partially executed
        scope.task_spawned()
        rt.deques.push(task)
        replayed, killed = ex.fail_place(rt, l3)
        assert (replayed, killed) == (0, 1)
        with pytest.raises(PlaceFailure, match="in flight"):
            p.get_future().value()
        rt.shutdown()
        ex.shutdown()

    def test_fallback_validation(self):
        ex, model, rt = numa_rt()
        l3 = model.place("socket0.l3")
        with pytest.raises(ConfigError, match="itself"):
            ex.fail_place(rt, l3, reassign_to=l3)
        ex.fail_place(rt, l3)
        # A dead place cannot serve as a fallback for a later failure.
        with pytest.raises(ConfigError, match="has itself failed"):
            ex.fail_place(rt, rt.sysmem, reassign_to=l3)
        rt.shutdown()
        ex.shutdown()


class TestFailWorker:
    def test_survivors_absorb_the_load(self):
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=4)
        rt = HiperRuntime(model, ex).start()
        wids = []

        def main():
            from repro.runtime.context import current_context
            ex.fail_worker(rt, 1)

            def body(i):
                charge(1e-5)
                wids.append(current_context().worker.wid)

            finish(lambda: forasync(40, body, chunks=40))
            return True

        assert rt.run(main)
        assert len(wids) == 40
        assert 1 not in wids
        assert rt.stats.counter("resilience", "worker_failures") == 1
        rt.shutdown()
        ex.shutdown()

    def test_stranded_tasks_move_to_lowest_live_worker(self):
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=4)
        rt = HiperRuntime(model, ex).start()
        scope = FinishScope(name="t", lock_cls=ex.lock_class)
        stranded = Task(lambda: "moved", created_by=3, scope=scope,
                        result_promise=Promise(), place=rt.sysmem)
        scope.task_spawned()
        rt.deques.push(stranded)
        moved = ex.fail_worker(rt, 3)
        assert moved == 1
        assert stranded.created_by == 0
        f = stranded.result_promise.get_future()
        ex.drain()  # the evacuation re-enqueue woke a live worker
        assert f.value() == "moved"
        rt.shutdown()
        ex.shutdown()

    def test_idempotent_and_validated(self):
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=2)
        rt = HiperRuntime(model, ex).start()
        assert ex.fail_worker(rt, 1) == 0
        assert ex.fail_worker(rt, 1) == 0  # already dead: no-op
        with pytest.raises(ConfigError, match="out of range"):
            ex.fail_worker(rt, 7)
        with pytest.raises(ConfigError, match="last live worker"):
            ex.fail_worker(rt, 0)
        rt.shutdown()
        ex.shutdown()


# ---------------------------------------------------------------------------
# SPMD chaos: golden determinism + checkpoint-driven recovery (acceptance)
# ---------------------------------------------------------------------------
def _isx_chaos(seed):
    """One small ISx run under a drop plan; returns (injector, results)."""
    from repro.apps.isx import IsxConfig, isx_main, validate_isx

    cfg = IsxConfig(keys_per_pe=900)
    cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2,
                            machine=machine("workstation"))
    plan = FaultPlan.from_spec({
        "retry": {"attempts": 6, "base": 1e-5, "factor": 2.0, "jitter": 0.25},
        "faults": [{"kind": "message_drop", "prob": 0.25}],
    }, seed=seed)
    inj = FaultInjector(plan)
    res = spmd_run(isx_main("hiper", cfg), cluster,
                   module_factories=[shmem_factory()], fault_injector=inj)
    validate_isx(cfg, res.nranks, res.results)
    return inj, res


class TestGoldenDeterminism:
    def test_same_seed_identical_fault_sequence(self):
        inj1, res1 = _isx_chaos(seed=1)
        inj2, res2 = _isx_chaos(seed=1)
        assert inj1.events, "plan injected nothing; test is vacuous"
        assert inj1.event_log() == inj2.event_log()
        assert res1.makespan == res2.makespan
        s1, s2 = res1.merged_stats(), res2.merged_stats()
        assert s1.counter("shmem", "retries") > 0
        assert s1.counter("shmem", "retries") == s2.counter("shmem", "retries")

    def test_different_seed_different_sequence(self):
        inj1, _ = _isx_chaos(seed=1)
        inj3, _ = _isx_chaos(seed=3)
        assert inj1.event_log() != inj3.event_log()


#: Two sockets so the doomed place (socket1.l3) is distinct from the place
#: hosting each rank's main task (worker 0's socket0.l3).
NVM_DUO = MachineSpec(name="nvm-duo", sockets=2, cores_per_socket=2,
                      nvm_bytes=1 << 30)


class TestCheckpointRecovery:
    """Acceptance: an ISx-style keysort loses its compute place mid-run and
    still produces the no-fault answer by restoring from checkpoint."""

    @staticmethod
    def _main(ctx):
        from repro.runtime.api import timer_future

        rt = ctx.runtime
        ck = rt.module("checkpoint")
        rng = np.random.default_rng(100 + ctx.rank)
        keys = rng.integers(0, 1 << 20, size=4096).astype(np.int64)
        yield ck.checkpoint_async("keys", {"k": keys})
        target = rt.model.place("socket1.l3")

        def sort_body():
            restored = (yield ck.restore_async("keys"))["k"]
            chunks = [np.sort(c) for c in np.array_split(restored, 8)]
            merged = chunks[0]
            for c in chunks[1:]:
                # Yield between merge steps so a mid-run place failure can
                # land while this task is suspended.
                yield timer_future(2e-5)
                merged = np.concatenate([merged, c])
            return np.sort(merged)

        fut = async_retry(sort_body, attempts=3, backoff=Backoff(base=1e-5),
                          retry_on=PlaceFailure, name="sort", place=target)
        out = yield fut
        return out

    def _run(self, fault_injector=None):
        cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2,
                                machine=NVM_DUO, detail="numa")
        return spmd_run(self._main, cluster,
                        module_factories=[checkpoint_factory()],
                        fault_injector=fault_injector)

    def test_recovers_to_the_no_fault_answer(self):
        baseline = self._run()
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "place_fail", "at": 1e-4, "rank": 1,
             "place": "socket1.l3", "max_faults": 1}]})
        inj = FaultInjector(plan)
        res = self._run(fault_injector=inj)
        # The failure actually happened, killed the in-flight sort on rank 1,
        # and the retry recovered from checkpoint.
        assert [k for _, k, _ in inj.events] == ["place_fail"]
        merged = res.merged_stats()
        assert merged.counter("resilience", "tasks_killed") >= 1
        assert merged.counter("resilience", "retries") >= 1
        assert len(merged.series["resilience/time_to_recovery"]) >= 1
        for got, want in zip(res.results, baseline.results):
            assert np.array_equal(got, want)

    def test_fault_run_is_replayable(self):
        plan_spec = {"faults": [
            {"kind": "place_fail", "at": 1e-4, "rank": 1,
             "place": "socket1.l3", "max_faults": 1}]}
        inj1 = FaultInjector(FaultPlan.from_spec(plan_spec))
        res1 = self._run(fault_injector=inj1)
        inj2 = FaultInjector(FaultPlan.from_spec(plan_spec))
        res2 = self._run(fault_injector=inj2)
        assert inj1.event_log() == inj2.event_log()
        assert res1.makespan == res2.makespan
        for a, b in zip(res1.results, res2.results):
            assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# worker failure inside an SPMD run (timed rule end to end)
# ---------------------------------------------------------------------------
class TestTimedWorkerFault:
    def test_worker_fail_rule_fires_and_run_completes(self):
        def main(ctx):
            from repro.runtime.api import timer_future

            total = 0
            for _ in range(4):
                yield timer_future(5e-5)
                acc = []
                finish(lambda: forasync(16, lambda i: acc.append(i),
                                        chunks=16))
                total += len(acc)
            return total

        cluster = ClusterConfig(nodes=1, ranks_per_node=1, workers_per_rank=4,
                                machine=machine("workstation"))
        plan = FaultPlan.from_spec({"faults": [
            {"kind": "worker_fail", "at": 1e-4, "rank": 0, "worker": 2,
             "max_faults": 1}]})
        inj = FaultInjector(plan)
        res = spmd_run(main, cluster, fault_injector=inj)
        assert res.results == [64]
        assert [k for _, k, _ in inj.events] == ["worker_fail"]
        assert res.merged_stats().counter("resilience", "worker_failures") == 1
