"""Communication-path overhaul: message coalescing, adaptive polling, buffer
pooling, and their interactions with resilience and determinism.

Covers (ISSUE: comm tentpole):

- :mod:`repro.net.coalesce` — watermark/timeout/explicit flush policies,
  FIFO-preserving batch dispatch, flush-reason/occupancy telemetry;
- coalescing × resilience — drop/corrupt verdicts apply to the *envelope*,
  ``set_retry_policy`` retransmits the whole batch exactly once per attempt,
  and seeded fault plans stay deterministic with coalescing on;
- :class:`FabricMux` teardown — ``unregister_channel``/``close`` flush
  pending buffers, ``register_sink(replace=True)`` swaps a rank's sink;
- adaptive polling — exponential backoff on empty sweeps, reset on any sign
  of life, ``max_interval`` cap, and exact equivalence of the default
  fixed-interval mode;
- :mod:`repro.util.bufpool` — pooled snapshot ownership protocol;
- end-to-end — SHMEM ``quiet``/barrier as flush points, and ISx results
  bit-identical with coalescing on vs. off
  (:func:`repro.verify.isx_coalescing_differential`).
"""

import numpy as np
import pytest

from repro.apps.presets import comm_coalesce
from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.net import CoalescePolicy
from repro.net.costmodel import NetworkModel
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.platform import machine
from repro.resilience import Backoff, FaultInjector, FaultPlan, RetryPolicy
from repro.runtime.future import Promise
from repro.runtime.polling import PollingService
from repro.shmem import shmem_factory
from repro.util.bufpool import BufferPool, PooledArray, release_if_pooled
from repro.util.errors import CommError, ConfigError
from repro.util.stats import RuntimeStats


def make_world(nranks=2, *, stats=None):
    """SimExecutor + fabric + one mux per rank, 'app' channel recording
    (src, payload) per receiving rank."""
    ex = SimExecutor()
    fab = SimFabric(ex, nranks, NetworkModel())
    got = {r: [] for r in range(nranks)}
    muxes = []
    for r in range(nranks):
        m = FabricMux(fab, r, stats=stats)
        m.register_channel("app", lambda s, p, t, r=r: got[r].append((s, p)))
        muxes.append(m)
    return ex, fab, muxes, got


# ---------------------------------------------------------------------------
# policy validation
# ---------------------------------------------------------------------------
class TestCoalescePolicy:
    def test_defaults(self):
        pol = CoalescePolicy()
        assert pol.max_msgs >= 1 and pol.max_bytes >= 1
        assert pol.flush_interval > 0

    @pytest.mark.parametrize("kw", [
        {"max_msgs": 0}, {"max_bytes": 0}, {"flush_interval": 0.0},
        {"flush_interval": -1e-6},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            CoalescePolicy(**kw)

    def test_preset_is_valid(self):
        assert isinstance(comm_coalesce(), CoalescePolicy)


# ---------------------------------------------------------------------------
# flush triggers
# ---------------------------------------------------------------------------
class TestFlushTriggers:
    def test_message_watermark_flushes_exact_batch(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=4))
        for i in range(4):
            muxes[0].transmit(1, "app", f"m{i}", 8)
        ex.drain()
        assert [p for _, p in got[1]] == ["m0", "m1", "m2", "m3"]
        assert fab.messages_sent == 1  # ONE envelope on the wire

    def test_byte_watermark_flushes(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing(
            "app", CoalescePolicy(max_msgs=1000, max_bytes=100))
        muxes[0].transmit(1, "app", "a", 60)
        assert got[1] == []  # below both watermarks: still buffered
        muxes[0].transmit(1, "app", "b", 60)  # 120 >= 100: flush
        ex.drain()
        assert [p for _, p in got[1]] == ["a", "b"]
        assert fab.messages_sent == 1

    def test_timeout_flushes_lone_message(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing(
            "app", CoalescePolicy(max_msgs=1000, flush_interval=1e-4))
        muxes[0].transmit(1, "app", "straggler", 8)
        ex.drain()
        assert [p for _, p in got[1]] == ["straggler"]
        # The flush happened at the timeout, not at send time.
        assert ex.now() >= 1e-4

    def test_stale_timeout_timer_is_noop(self):
        """A watermark flush supersedes the armed timeout: the timer must
        not transmit a second (empty or duplicate) envelope."""
        ex, fab, muxes, got = make_world()
        co = muxes[0].enable_coalescing(
            "app", CoalescePolicy(max_msgs=2, flush_interval=1e-4))
        muxes[0].transmit(1, "app", "x", 8)
        muxes[0].transmit(1, "app", "y", 8)  # watermark flush
        ex.drain()
        assert [p for _, p in got[1]] == ["x", "y"]
        assert co.batches_sent == 1
        assert fab.messages_sent == 1

    def test_explicit_flush_and_pending_count(self):
        ex, fab, muxes, got = make_world(3)
        co = muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=1000))
        muxes[0].transmit(1, "app", "to1", 8)
        muxes[0].transmit(2, "app", "to2a", 8)
        muxes[0].transmit(2, "app", "to2b", 8)
        assert co.pending_msgs == 3
        assert muxes[0].flush("app") == 2  # one batch per destination
        assert co.pending_msgs == 0
        ex.drain()
        assert [p for _, p in got[1]] == ["to1"]
        assert [p for _, p in got[2]] == ["to2a", "to2b"]

    def test_flush_single_destination(self):
        ex, fab, muxes, got = make_world(3)
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=1000))
        muxes[0].transmit(1, "app", "keep", 8)
        muxes[0].transmit(2, "app", "go", 8)
        assert muxes[0].flush("app", dst=2) == 1
        assert muxes[0].coalescer("app").pending_msgs == 1  # dst 1 kept
        ex.drain()
        assert [p for _, p in got[2]] == ["go"]

    def test_flush_empty_is_zero(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app")
        assert muxes[0].flush("app") == 0
        assert muxes[0].flush() == 0        # all-channels form
        assert muxes[1].flush("app") == 0   # coalescing never enabled here
        ex.drain()
        assert fab.messages_sent == 0

    def test_fifo_order_across_batches(self):
        """Messages to one destination arrive in send order even when they
        span several envelopes (batches obey the pairwise-FIFO clamp)."""
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=3))
        for i in range(10):
            muxes[0].transmit(1, "app", i, 8)
        muxes[0].flush("app")
        ex.drain()
        assert [p for _, p in got[1]] == list(range(10))
        assert fab.messages_sent == 4  # 3+3+3+1

    def test_on_injected_fires_once_per_message(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=4))
        injected = []
        for i in range(4):
            muxes[0].transmit(1, "app", i, 8,
                              on_injected=lambda t, i=i: injected.append(i))
        ex.drain()
        assert sorted(injected) == [0, 1, 2, 3]

    def test_uncoalesced_channel_untouched(self):
        """Other channels on the same mux keep per-message semantics."""
        ex, fab, muxes, got = make_world()
        other = []
        for m in muxes:
            m.register_channel("raw", lambda s, p, t: other.append(p))
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=1000))
        muxes[0].transmit(1, "raw", "direct", 8)
        ex.drain()
        assert other == ["direct"]  # delivered without any flush
        assert muxes[0].coalescer("raw") is None


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------
class TestCoalesceTelemetry:
    def test_flush_reasons_and_occupancy(self):
        stats = RuntimeStats()
        ex, fab, muxes, got = make_world(stats=stats)
        muxes[0].enable_coalescing(
            "app", CoalescePolicy(max_msgs=2, flush_interval=1e-4))
        muxes[0].transmit(1, "app", "a", 8)
        muxes[0].transmit(1, "app", "b", 8)  # watermark
        muxes[0].transmit(1, "app", "c", 8)
        muxes[0].flush("app")                # explicit
        muxes[0].transmit(1, "app", "d", 8)
        ex.drain()                           # timeout
        assert stats.counter("app", "batches_sent") == 3
        assert stats.counter("app", "flush_watermark_msgs") == 1
        assert stats.counter("app", "flush_explicit") == 1
        assert stats.counter("app", "flush_timeout") == 1
        hist = stats.histogram("app", "batch_occupancy")
        assert hist.n == 3 and hist.total == 4  # batches of 2, 1, 1

    def test_receive_side_counters(self):
        stats = RuntimeStats()
        ex, fab, muxes, got = make_world(stats=stats)
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=3))
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        assert stats.counter("app", "batches_received") == 1
        assert stats.counter("app", "msgs_received") == 3
        assert stats.counter("app", "msgs_sent") == 3  # logical sends


# ---------------------------------------------------------------------------
# coalescing x resilience
# ---------------------------------------------------------------------------
class TestCoalesceResilience:
    def _coalesced_pair(self, policy=None):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=3))
        if policy is not None:
            muxes[0].set_retry_policy("app", policy)
        return ex, fab, muxes, got

    def test_dropped_envelope_loses_whole_batch(self):
        ex, fab, muxes, got = self._coalesced_pair()
        fab.fault_hook = lambda src, dst, n, p: ("drop",)
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        assert got[1] == []
        assert fab.messages_dropped == 1  # the envelope, not 3 messages

    def test_corrupted_envelope_discarded_whole(self):
        ex, fab, muxes, got = self._coalesced_pair()
        fab.fault_hook = lambda src, dst, n, p: ("corrupt",)
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        assert got[1] == []
        assert fab.messages_corrupted == 1

    def test_retry_retransmits_batch_exactly_once_per_attempt(self):
        ex, fab, muxes, got = self._coalesced_pair(
            RetryPolicy(max_attempts=4, backoff=Backoff(base=1e-6)))
        verdicts = [("drop",), None]
        fab.fault_hook = lambda *a: verdicts.pop(0) if verdicts else None
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        # Every message delivered exactly once, in order, from ONE retransmit.
        assert [p for _, p in got[1]] == [0, 1, 2]
        assert fab.messages_dropped == 1
        assert fab.messages_sent == 2  # original envelope + one retransmit

    def test_retry_recovers_corrupted_batch(self):
        ex, fab, muxes, got = self._coalesced_pair(
            RetryPolicy(max_attempts=3, backoff=Backoff(base=1e-6)))
        verdicts = [("corrupt",), None]
        fab.fault_hook = lambda *a: verdicts.pop(0) if verdicts else None
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        assert [p for _, p in got[1]] == [0, 1, 2]
        assert fab.messages_corrupted == 1

    def test_retry_exhaustion_drops_batch(self):
        ex, fab, muxes, got = self._coalesced_pair(
            RetryPolicy(max_attempts=2, backoff=Backoff(base=1e-6)))
        fab.fault_hook = lambda *a: ("drop",)
        for i in range(3):
            muxes[0].transmit(1, "app", i, 8)
        ex.drain()
        assert got[1] == []
        assert fab.messages_dropped == 2  # original + the one retry

    def test_seeded_fault_plan_deterministic_with_coalescing(self):
        """Golden-determinism contract under ``--plan`` presets survives
        coalescing: same seed, same fault event log, same results."""
        from repro.apps.isx import IsxConfig, isx_main, validate_isx

        def chaos(seed):
            cfg = IsxConfig(keys_per_pe=900)
            cluster = ClusterConfig(nodes=2, ranks_per_node=1,
                                    workers_per_rank=2,
                                    machine=machine("workstation"))
            plan = FaultPlan.from_spec({
                "retry": {"attempts": 6, "base": 1e-5, "factor": 2.0,
                          "jitter": 0.25},
                "faults": [{"kind": "message_drop", "prob": 0.25}],
            }, seed=seed)
            inj = FaultInjector(plan)
            res = spmd_run(isx_main("hiper", cfg), cluster,
                           module_factories=[shmem_factory(
                               coalesce=comm_coalesce())],
                           fault_injector=inj)
            validate_isx(cfg, res.nranks, res.results)
            return inj, res

        inj1, res1 = chaos(seed=1)
        inj2, res2 = chaos(seed=1)
        assert inj1.events, "plan injected nothing; test is vacuous"
        assert inj1.event_log() == inj2.event_log()
        assert res1.makespan == res2.makespan


# ---------------------------------------------------------------------------
# mux teardown
# ---------------------------------------------------------------------------
class TestMuxTeardown:
    def test_unregister_channel_flushes_pending(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=1000))
        muxes[0].transmit(1, "app", "last-words", 8)
        muxes[0].unregister_channel("app")
        ex.drain()
        assert [p for _, p in got[1]] == ["last-words"]  # not lost
        assert "app" not in muxes[0].channels()
        with pytest.raises(CommError, match="unregistered"):
            muxes[0].transmit(1, "app", "after-teardown", 8)

    def test_unregister_unknown_channel_rejected(self):
        ex, fab, muxes, got = make_world()
        with pytest.raises(CommError, match="not registered"):
            muxes[0].unregister_channel("ghost")

    def test_close_releases_rank_for_replacement(self):
        ex, fab, muxes, got = make_world()
        muxes[0].close()
        assert muxes[0].channels() == []
        # The rank's sink slot is free again: a replacement mux can claim it.
        m = FabricMux(fab, 0)
        back = []
        m.register_channel("app", lambda s, p, t: back.append(p))
        muxes[1].transmit(0, "app", "to-the-new-mux", 8)
        ex.drain()
        assert back == ["to-the-new-mux"]

    def test_register_sink_replace(self):
        ex, fab, muxes, got = make_world()
        replaced = []
        fab.register_sink(1, lambda s, p, t: replaced.append(p), replace=True)
        muxes[0].transmit(1, "app", "rerouted", 8)
        ex.drain()
        assert replaced == [("app", "rerouted")]
        assert got[1] == []

    def test_register_sink_duplicate_still_rejected(self):
        ex, fab, muxes, got = make_world()
        with pytest.raises(CommError, match="already has a registered sink"):
            fab.register_sink(1, lambda s, p, t: None)

    def test_disable_coalescing_flushes_then_goes_per_message(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app", CoalescePolicy(max_msgs=1000))
        muxes[0].transmit(1, "app", "buffered", 8)
        muxes[0].disable_coalescing("app")
        muxes[0].transmit(1, "app", "direct", 8)
        ex.drain()
        assert [p for _, p in got[1]] == ["buffered", "direct"]
        assert fab.messages_sent == 2
        assert muxes[0].coalescer("app") is None

    def test_enable_twice_rejected(self):
        ex, fab, muxes, got = make_world()
        muxes[0].enable_coalescing("app")
        with pytest.raises(CommError, match="already enabled"):
            muxes[0].enable_coalescing("app")

    def test_enable_on_unregistered_channel_rejected(self):
        ex, fab, muxes, got = make_world()
        with pytest.raises(CommError, match="unregistered"):
            muxes[0].enable_coalescing("ghost")


# ---------------------------------------------------------------------------
# adaptive polling
# ---------------------------------------------------------------------------
class TestAdaptivePolling:
    def _service(self, sim_rt, **kw):
        return PollingService(sim_rt, sim_rt.interconnect, module="mpi", **kw)

    def test_fixed_mode_never_backs_off(self, sim_rt):
        svc = self._service(sim_rt, interval=1e-6)
        for _ in range(8):
            svc._pending.append((lambda: (False, None), Promise()))
            svc._sweep()
        assert svc.backoffs == 0
        assert svc._cur_interval == svc.interval
        assert sim_rt.stats.counter("mpi", "poll_backoffs") == 0

    def test_empty_sweeps_double_interval_up_to_cap(self, sim_rt):
        svc = self._service(sim_rt, interval=1e-6, adaptive=True,
                            max_interval=8e-6)
        svc._pending.append((lambda: (False, None), Promise()))
        widths = []
        for _ in range(6):
            svc._sweep()
            widths.append(svc._cur_interval)
        assert widths == pytest.approx([2e-6, 4e-6, 8e-6, 8e-6, 8e-6, 8e-6])
        assert svc.backoffs == 3  # capped: no further counting at the ceiling
        assert sim_rt.stats.counter("mpi", "poll_backoffs") == 3

    def test_completion_resets_interval(self, sim_rt):
        svc = self._service(sim_rt, interval=1e-6, adaptive=True)
        svc._pending.append((lambda: (False, None), Promise()))
        svc._sweep()
        svc._sweep()
        assert svc._cur_interval > svc.interval
        done = [False]
        svc._pending.append((lambda: (done[0], None), Promise()))
        done[0] = True
        svc._sweep()  # completes one op: snap back
        assert svc._cur_interval == svc.interval

    def test_kick_and_watch_reset_interval(self, sim_rt):
        svc = self._service(sim_rt, interval=1e-6, adaptive=True)
        svc._pending.append((lambda: (False, None), Promise()))
        svc._sweep()
        assert svc._cur_interval > svc.interval
        svc.kick()
        assert svc._cur_interval == svc.interval
        svc._sweep()
        svc.watch(lambda: (False, None), Promise())
        assert svc._cur_interval == svc.interval

    def test_default_cap_is_64x(self, sim_rt):
        svc = self._service(sim_rt, interval=2e-6, adaptive=True)
        assert svc.max_interval == pytest.approx(128e-6)

    def test_bad_cap_rejected(self, sim_rt):
        with pytest.raises(ValueError, match="max_interval"):
            self._service(sim_rt, interval=1e-5, adaptive=True,
                          max_interval=1e-6)

    def test_mpi_module_kwargs_accepted(self):
        """The flags thread through the MPI module factory."""
        from repro.mpi import mpi_factory

        def main(ctx):
            mod = ctx.runtime.module("mpi")
            assert mod.polling.adaptive
            assert mod.polling.max_interval == pytest.approx(1e-4)
            return True

        cluster = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2)
        res = spmd_run(main, cluster, module_factories=[
            mpi_factory(adaptive_polling=True, max_poll_interval=1e-4)])
        assert all(res.results)


# ---------------------------------------------------------------------------
# buffer pool
# ---------------------------------------------------------------------------
class TestBufferPool:
    def test_take_copy_shape_dtype_contents(self):
        pool = BufferPool()
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        snap = pool.take_copy(data)
        assert isinstance(snap, PooledArray)
        assert snap.shape == data.shape and snap.dtype == data.dtype
        assert np.array_equal(snap, data)
        data[0, 0] = -1.0
        assert snap[0, 0] == 0.0  # a real copy, not a view of the caller's

    def test_release_recycles_storage(self):
        pool = BufferPool()
        a = pool.take_copy(np.arange(8, dtype=np.int64))
        assert (pool.hits, pool.misses) == (0, 1)
        a.release()
        assert pool.free_buffers == 1
        b = pool.take_copy(np.arange(8, dtype=np.int64))
        assert (pool.hits, pool.misses) == (1, 1)
        assert pool.hit_rate == pytest.approx(0.5)
        b.release()

    def test_double_release_is_noop(self):
        pool = BufferPool()
        a = pool.take_copy(np.arange(4))
        a.release()
        a.release()
        assert pool.free_buffers == 1  # not returned twice
        assert pool.released == 1

    def test_derived_views_do_not_own_storage(self):
        pool = BufferPool()
        a = pool.take_copy(np.arange(8, dtype=np.int64))
        view = a.reshape(2, 4)
        sl = a[:2]
        view.release()  # plain arrays for release purposes: no-ops
        sl.release()
        assert pool.free_buffers == 0
        a.release()
        assert pool.free_buffers == 1

    def test_release_if_pooled_handles_anything(self):
        pool = BufferPool()
        a = pool.take_copy(np.arange(4))
        release_if_pooled(a)
        assert pool.free_buffers == 1
        release_if_pooled(np.arange(4))   # plain ndarray: no-op
        release_if_pooled(b"bytes")       # not an array at all: no-op

    def test_size_classes_are_power_of_two(self):
        pool = BufferPool()
        pool.take_copy(np.zeros(100, dtype=np.uint8)).release()
        a = pool.take_copy(np.zeros(17, dtype=np.float64))  # 136 bytes
        assert pool.hits == 0  # 100 -> 128-byte class, 136 -> 256-byte class
        a.release()
        b = pool.take_copy(np.zeros(20, dtype=np.float64))  # 160 -> 256 too
        assert pool.hits == 1
        b.release()

    def test_free_list_cap(self):
        pool = BufferPool(max_per_class=2)
        arrs = [pool.take_copy(np.arange(4)) for _ in range(5)]
        for a in arrs:
            a.release()
        assert pool.released == 5
        assert pool.free_buffers == 2  # surplus storage dropped to the GC

    def test_empty_array(self):
        pool = BufferPool()
        a = pool.take_copy(np.empty(0, dtype=np.int64))
        assert a.size == 0
        a.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(max_per_class=0)

    def test_stats_wiring(self):
        stats = RuntimeStats()
        pool = BufferPool(stats=stats, module="shmem")
        pool.take_copy(np.arange(4)).release()
        pool.take_copy(np.arange(4)).release()
        assert stats.counter("shmem", "bufpool_misses") == 1
        assert stats.counter("shmem", "bufpool_hits") == 1
        assert stats.counter("shmem", "bufpool_released") == 2


# ---------------------------------------------------------------------------
# end-to-end: SHMEM with coalescing
# ---------------------------------------------------------------------------
def run_shmem(main, nranks=4, workers=2, **mod_kwargs):
    cluster = ClusterConfig(nodes=nranks, ranks_per_node=1,
                            workers_per_rank=workers)
    return spmd_run(main, cluster,
                    module_factories=[shmem_factory(**mod_kwargs)])


class TestShmemCoalesced:
    def test_put_visible_after_barrier(self):
        def main(ctx):
            sh, me, n = ctx.shmem, ctx.rank, ctx.nranks
            dest = sh.malloc(n)
            sh.put(dest, np.array([me * 10]), (me + 1) % n, offset=me)
            sh.barrier_all()
            return int(dest[(me - 1) % n])

        res = run_shmem(main, coalesce=comm_coalesce())
        assert res.results == [r * 10 for r in [3, 0, 1, 2]]

    def test_quiet_is_a_flush_point(self):
        """Many sub-watermark puts then quiet: every byte must have landed
        when quiet returns (quiet flushes the coalescing buffers)."""
        def main(ctx):
            # Coroutine main (the SPMD idiom): yield the async collectives.
            sh, me, n = ctx.shmem, ctx.rank, ctx.nranks
            dest = sh.malloc(16)
            if me == 0:
                # Sub-watermark puts with an effectively-infinite timeout:
                # quiet alone must force the flush. (Local completions fire
                # at buffer time — well before any delivery.)
                futs = [sh.put_async(dest, np.array([i + 1]), 1, offset=i)
                        for i in range(16)]
                for f in futs:
                    yield f
                yield sh.quiet_async()
            yield sh.barrier_all_async()
            return int(dest.arr.sum()) if me == 1 else 0

        res = run_shmem(main, nranks=2,
                        coalesce=CoalescePolicy(max_msgs=1000,
                                                flush_interval=1.0))
        assert res.results[1] == sum(range(1, 17))

    def test_pool_stats_appear_in_merged_stats(self):
        def main(ctx):
            sh, me, n = ctx.shmem, ctx.rank, ctx.nranks
            dest = sh.malloc(4)
            for _ in range(8):
                yield sh.put_async(dest, np.arange(4), (me + 1) % n)
                yield sh.quiet_async()
            yield sh.barrier_all_async()
            return True

        res = run_shmem(main, coalesce=comm_coalesce())
        stats = res.merged_stats()
        assert stats.counter("shmem", "batches_sent") > 0
        assert stats.counter("shmem", "bufpool_hits") > 0
        assert stats.counter("shmem", "bufpool_released") > 0
        assert stats.histogram("shmem", "batch_occupancy").n > 0

    def test_coalescing_off_by_default(self):
        def main(ctx):
            assert ctx.shmem.backend.mux.coalescer("shmem") is None
            return True

        assert all(run_shmem(main, nranks=2).results)


class TestIsxCoalescingDifferential:
    def test_results_identical_on_vs_off(self):
        from repro.verify import isx_coalescing_differential

        rep = isx_coalescing_differential()
        assert rep.ok, rep.describe()
        assert [r.engine for r in rep.runs] == ["coalesce-off", "coalesce-on"]

    def test_report_flags_divergence(self):
        """The checker itself must be able to fail (no vacuous pass)."""
        from repro.verify import isx_coalescing_differential

        rep = isx_coalescing_differential()
        rep.runs[1].result = ("isx-coalescing", 0, ("tampered",))
        rep.mismatches = []
        baseline = rep.runs[0]
        for run in rep.runs[1:]:
            if run.result != baseline.result:
                rep.mismatches.append("diverged")
        assert not rep.ok
