"""Graph500: generator statistics, CSR, validator, and both BFS variants."""

import numpy as np
import pytest

from repro.apps.graph500 import (
    Graph500Config,
    block_bounds,
    build_csr,
    graph500_main,
    kronecker_edges,
    owner_of,
    pick_root,
    serial_bfs,
    validate_bfs,
)
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.shmem import shmem_factory
from repro.util.errors import ConfigError


def run_g500(variant, cfg, nranks=4, workers=2):
    cluster = ClusterConfig(nodes=nranks, ranks_per_node=1,
                            workers_per_rank=workers,
                            machine=machine("edison"))
    return spmd_run(graph500_main(variant, cfg), cluster,
                    module_factories=[mpi_factory(), shmem_factory()])


def assemble_parent(cfg, res):
    parent = np.full(cfg.nvertices, -1, dtype=np.int64)
    for r, blk in enumerate(res.results):
        lo, hi = block_bounds(cfg.nvertices, res.nranks, r)
        parent[lo:hi] = blk
    return parent


class TestGenerator:
    def test_edge_count_and_bounds(self):
        cfg = Graph500Config(scale=8)
        edges = kronecker_edges(cfg)
        assert edges.shape == (2, cfg.nedges)
        assert edges.min() >= 0 and edges.max() < cfg.nvertices

    def test_deterministic(self):
        cfg = Graph500Config(scale=7)
        assert np.array_equal(kronecker_edges(cfg), kronecker_edges(cfg))

    def test_seed_changes_graph(self):
        a = kronecker_edges(Graph500Config(scale=7, seed=1))
        b = kronecker_edges(Graph500Config(scale=7, seed=2))
        assert not np.array_equal(a, b)

    def test_rmat_skew(self):
        """Kronecker graphs are heavy-tailed: the max degree far exceeds the
        mean degree."""
        cfg = Graph500Config(scale=10)
        rows, cols = build_csr(kronecker_edges(cfg), cfg.nvertices)
        degrees = np.diff(rows)
        assert degrees.max() > 8 * degrees.mean()

    def test_config_bounds(self):
        with pytest.raises(ConfigError):
            Graph500Config(scale=1)
        with pytest.raises(ConfigError):
            Graph500Config(edgefactor=0)


class TestCsrAndSerialBfs:
    def test_csr_is_symmetric(self):
        cfg = Graph500Config(scale=6)
        rows, cols = build_csr(kronecker_edges(cfg), cfg.nvertices)
        # u in adj(v) iff v in adj(u)
        adj = [set(cols[rows[v]:rows[v+1]].tolist()) for v in range(cfg.nvertices)]
        for u in range(cfg.nvertices):
            for v in adj[u]:
                assert u in adj[v]

    def test_no_self_loops(self):
        cfg = Graph500Config(scale=6)
        rows, cols = build_csr(kronecker_edges(cfg), cfg.nvertices)
        for v in range(cfg.nvertices):
            assert v not in cols[rows[v]:rows[v+1]]

    def test_serial_bfs_levels_triangle_inequality(self):
        cfg = Graph500Config(scale=7)
        rows, cols = build_csr(kronecker_edges(cfg), cfg.nvertices)
        root = pick_root(cfg, rows)
        level = serial_bfs(rows, cols, root)
        assert level[root] == 0
        for u in range(cfg.nvertices):
            if level[u] < 0:
                continue
            for v in cols[rows[u]:rows[u+1]]:
                assert level[v] >= 0 and abs(level[v] - level[u]) <= 1

    def test_block_bounds_partition(self):
        n, p = 1000, 7
        covered = []
        for r in range(p):
            lo, hi = block_bounds(n, p, r)
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_owner_of_matches_bounds(self):
        n, p = 100, 3
        for v in range(n):
            o = int(owner_of(n, p, np.array([v]))[0])
            lo, hi = block_bounds(n, p, o)
            assert lo <= v < hi


class TestValidator:
    def _setup(self, scale=6):
        cfg = Graph500Config(scale=scale)
        edges = kronecker_edges(cfg)
        rows, cols = build_csr(edges, cfg.nvertices)
        root = pick_root(cfg, rows)
        level = serial_bfs(rows, cols, root)
        # build a genuine BFS parent array serially
        parent = np.full(cfg.nvertices, -1, dtype=np.int64)
        parent[root] = root
        order = np.argsort(level + (level < 0) * 10**9)
        for v in order:
            if level[v] <= 0:
                continue
            for u in cols[rows[v]:rows[v+1]]:
                if level[u] == level[v] - 1:
                    parent[v] = u
                    break
        return cfg, edges, root, parent

    def test_accepts_valid_tree(self):
        cfg, edges, root, parent = self._setup()
        assert validate_bfs(cfg, edges, root, parent) > 0

    def test_rejects_non_edge_parent(self):
        cfg, edges, root, parent = self._setup()
        reached = np.flatnonzero(parent >= 0)
        v = int(reached[reached != root][0])
        parent[v] = v  # self-parent is not a graph edge
        with pytest.raises(AssertionError):
            validate_bfs(cfg, edges, root, parent)

    def test_rejects_wrong_reached_set(self):
        cfg, edges, root, parent = self._setup()
        reached = np.flatnonzero(parent >= 0)
        v = int(reached[reached != root][-1])
        parent[v] = -1
        with pytest.raises(AssertionError, match="reached-set"):
            validate_bfs(cfg, edges, root, parent)


class TestVariants:
    @pytest.mark.parametrize("variant", ["mpi", "hiper"])
    @pytest.mark.parametrize("scale", [6, 9])
    def test_produces_valid_bfs_tree(self, variant, scale):
        cfg = Graph500Config(scale=scale)
        edges = kronecker_edges(cfg)
        res = run_g500(variant, cfg)
        parent = assemble_parent(cfg, res)
        rows, _ = build_csr(edges, cfg.nvertices)
        root = pick_root(cfg, rows)
        assert validate_bfs(cfg, edges, root, parent) > 0

    def test_single_rank(self):
        cfg = Graph500Config(scale=6)
        edges = kronecker_edges(cfg)
        res = run_g500("mpi", cfg, nranks=1)
        parent = assemble_parent(cfg, res)
        rows, _ = build_csr(edges, cfg.nvertices)
        assert validate_bfs(cfg, edges, pick_root(cfg, rows), parent) > 0

    def test_variants_near_parity(self):
        """Paper: 'little performance improvement to-date' — HiPER within
        ~2x of the reference either way at small scale."""
        cfg = Graph500Config(scale=9)
        t_mpi = run_g500("mpi", cfg).makespan
        t_hiper = run_g500("hiper", cfg).makespan
        assert 0.4 < t_hiper / t_mpi < 2.5

    def test_programmability_metric_fewer_recv_calls(self):
        """The paper's qualitative claim, quantified: the hiper variant makes
        no receive calls at all (one-sided + async_when)."""
        cfg = Graph500Config(scale=8)
        mpi_stats = run_g500("mpi", cfg).merged_stats()
        hiper_stats = run_g500("hiper", cfg).merged_stats()
        assert mpi_stats.counter("mpi", "alltoall") > 0
        assert hiper_stats.counter("mpi", "alltoall") == 0
        assert hiper_stats.counter("shmem", "async_when") > 0
