"""Differential checks: the same workload on different engines must produce
identical results and satisfy the quiesce invariants (ISSUE 4 tentpole,
part 3)."""

import pytest

from repro.apps.isx.common import IsxConfig
from repro.apps.uts.common import UtsConfig, sequential_count
from repro.verify import VerificationError, differential, run_on_engine
from repro.verify.differential import (
    WORKLOADS,
    graph500_workload,
    isx_workload,
    make_engine,
    uts_workload,
)


class TestWorkloads:
    def test_registry_covers_the_three_apps(self):
        assert set(WORKLOADS) == {"isx", "uts", "graph500", "isx-dag"}

    def test_isx_digest_matches_numpy_sort(self):
        run = run_on_engine(isx_workload(), "sim")
        tag, size, digest = run.result
        assert tag == "isx" and size == 2048
        assert run.invariants.ok

    def test_uts_count_matches_sequential_walk(self):
        cfg = UtsConfig(root_children=25, mean_children=0.7, node_cost=0.0)
        run = run_on_engine(uts_workload(cfg), "sim")
        assert run.result == ("uts", sequential_count(cfg))
        assert run.invariants.ok

    def test_graph500_parent_array_validates(self):
        run = run_on_engine(graph500_workload(), "sim")
        tag, reached, digest = run.result
        assert tag == "graph500" and reached > 0
        assert run.invariants.ok


class TestDifferential:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_sim_vs_threads(self, workload):
        rep = differential(workload, engines=("sim", "threads"))
        assert rep.ok, rep.describe()

    def test_sim_vs_interleave(self):
        rep = differential("isx", engines=("sim", "interleave"), seed=5)
        assert rep.ok, rep.describe()

    def test_interleave_seeds_agree_with_sim(self):
        base = run_on_engine(isx_workload(), "sim").result
        for seed in range(3):
            run = run_on_engine(isx_workload(), "interleave", seed=seed,
                                strategy="pct")
            assert run.result == base, f"seed {seed} diverged"

    def test_mismatch_is_reported(self, monkeypatch):
        """A divergent engine result must surface as a mismatch, not pass
        silently."""
        import importlib

        # repro.verify.__init__ rebinds the package attribute `differential`
        # to the function, so fetch the module itself.
        d = importlib.import_module("repro.verify.differential")

        calls = {"n": 0}
        real = d.run_on_engine

        def fake(workload, engine, **kw):
            run = real(workload, engine, **kw)
            calls["n"] += 1
            if calls["n"] == 2:  # corrupt the second engine's result
                run.result = ("uts", -1)
            return run

        monkeypatch.setattr(d, "run_on_engine", fake)
        rep = d.differential("uts", engines=("sim", "sim"))
        assert not rep.ok
        assert any("result" in m for m in rep.mismatches)

    def test_unknown_workload_raises(self):
        with pytest.raises(VerificationError, match="unknown workload"):
            differential("nope")

    def test_unknown_engine_raises(self):
        with pytest.raises(VerificationError, match="unknown engine"):
            make_engine("gpu")
