"""Module framework: lifecycle, namespace exports, registry, copy handlers."""

import pytest

from repro.exec.sim import SimExecutor
from repro.modules.base import (
    HiperModule,
    create_module,
    known_module_classes,
    register_module_class,
)
from repro.platform import PlaceType, discover, machine
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ModuleError


def make_rt(workers=2):
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=workers)
    return HiperRuntime(model, ex)


class Recorder(HiperModule):
    name = "recorder"
    capabilities = frozenset({"test"})

    def __init__(self):
        super().__init__()
        self.events = []

    def initialize(self, runtime):
        self.events.append("init")
        self.export(runtime, "record", self.events.append)

    def finalize(self, runtime):
        self.events.append("fini")


class TestLifecycle:
    def test_initialize_then_finalize_once(self):
        rt = make_rt()
        mod = Recorder()
        rt.start([mod])
        rt.shutdown()
        rt.shutdown()  # idempotent
        assert mod.events == ["init", "fini"]

    def test_finalize_reverse_install_order(self):
        order = []

        class A(HiperModule):
            name = "a"

            def initialize(self, runtime):
                pass

            def finalize(self, runtime):
                order.append("a")

        class B(A):
            name = "b"

            def finalize(self, runtime):
                order.append("b")

        rt = make_rt()
        rt.start([A(), B()])
        rt.shutdown()
        assert order == ["b", "a"]

    def test_duplicate_install_rejected(self):
        rt = make_rt()
        rt.start([Recorder()])
        with pytest.raises(ModuleError, match="twice"):
            rt.install(Recorder())

    def test_failed_initialize_rolls_back(self):
        class Broken(HiperModule):
            name = "broken"

            def initialize(self, runtime):
                raise RuntimeError("nope")

        rt = make_rt()
        rt.start()
        with pytest.raises(RuntimeError):
            rt.install(Broken())
        with pytest.raises(ModuleError, match="not installed"):
            rt.module("broken")

    def test_module_requires_name(self):
        class Nameless(HiperModule):
            def initialize(self, runtime):
                pass

        with pytest.raises(ModuleError, match="name"):
            Nameless()

    def test_start_twice_rejected(self):
        rt = make_rt()
        rt.start()
        from repro.util.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError):
            rt.start()

    def test_install_after_shutdown_rejected(self):
        rt = make_rt()
        rt.start()
        rt.shutdown()
        from repro.util.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError):
            rt.install(Recorder())


class TestNamespaceExports:
    def test_export_reachable_via_ops(self):
        rt = make_rt()
        mod = Recorder()
        rt.start([mod])
        rt.ops.record("via-namespace")
        assert "via-namespace" in mod.events

    def test_export_collision_rejected(self):
        class Clasher(HiperModule):
            name = "clasher"

            def initialize(self, runtime):
                self.export(runtime, "record", lambda *a: None)

        rt = make_rt()
        rt.start([Recorder()])
        with pytest.raises(ModuleError, match="already"):
            rt.install(Clasher())

    def test_require_place_type(self):
        class NeedsNvm(HiperModule):
            name = "needs-nvm"

            def initialize(self, runtime):
                self.require_place_type(runtime, PlaceType.NVM)

        rt = make_rt()
        rt.start()
        with pytest.raises(ModuleError, match="nvm"):
            rt.install(NeedsNvm())


class TestRegistry:
    def test_register_and_create_by_name(self):
        class Registered(HiperModule):
            name = "registered-test-mod"

            def __init__(self, flag=False):
                super().__init__()
                self.flag = flag

            def initialize(self, runtime):
                pass

        try:
            register_module_class(Registered)
            inst = create_module("registered-test-mod", flag=True)
            assert inst.flag is True
            assert "registered-test-mod" in known_module_classes()
            with pytest.raises(ModuleError, match="twice"):
                register_module_class(Registered)
        finally:
            known_module_classes()  # snapshot only; cleanup below
            from repro.modules import base as _b
            _b._MODULE_CLASSES.pop("registered-test-mod", None)

    def test_create_unknown_name(self):
        with pytest.raises(ModuleError, match="no module class"):
            create_module("nonexistent-module")


class TestCopyHandlers:
    def test_duplicate_handler_rejected(self):
        rt = make_rt()
        rt.register_copy_handler(PlaceType.SYSTEM_MEM, PlaceType.NVM,
                                 lambda *a: None)
        with pytest.raises(ModuleError, match="already registered"):
            rt.register_copy_handler(PlaceType.SYSTEM_MEM, PlaceType.NVM,
                                     lambda *a: None)

    def test_lookup_returns_none_when_absent(self):
        rt = make_rt()
        assert rt.copy_handler(PlaceType.NVM, PlaceType.DISK) is None
