"""MPI module: matching semantics, taskify/polling flows, collectives."""

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import ANY_SOURCE, ANY_TAG, mpi_factory
from repro.util.errors import ConfigError


def run(main, nranks=4, workers=2, **cfg_kwargs):
    cfg = ClusterConfig(nodes=nranks, ranks_per_node=1,
                        workers_per_rank=workers, **cfg_kwargs)
    return spmd_run(main, cfg, module_factories=[mpi_factory()])


class TestPointToPoint:
    def test_ring_isend_irecv(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            fs = ctx.mpi.isend(me, (me + 1) % n, tag=1)
            data, src, tag = yield ctx.mpi.irecv(src=(me - 1) % n, tag=1)
            yield fs
            return (data, src, tag)

        res = run(main)
        for r, (data, src, tag) in enumerate(res.results):
            assert data == (r - 1) % 4 and src == (r - 1) % 4 and tag == 1

    def test_blocking_send_recv_async_spellings(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            if me == 0:
                yield ctx.mpi.send_async([1, 2, 3], 1, tag=9)
                return "sent"
            if me == 1:
                data = yield ctx.mpi.recv_async(src=0, tag=9)
                return data
            return None

        res = run(main, nranks=2)
        assert res.results == ["sent", [1, 2, 3]]

    def test_tag_matching_selects_correct_message(self):
        def main(ctx):
            me = ctx.rank
            if me == 0:
                ctx.mpi.isend("tag5", 1, tag=5)
                ctx.mpi.isend("tag6", 1, tag=6)
                return None
            if me == 1:
                d6, _, _ = yield ctx.mpi.irecv(src=0, tag=6)
                d5, _, _ = yield ctx.mpi.irecv(src=0, tag=5)
                return (d5, d6)
            return None

        res = run(main, nranks=2)
        assert res.results[1] == ("tag5", "tag6")

    def test_any_source_any_tag_wildcards(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            if me == 0:
                got = []
                for _ in range(n - 1):
                    data, src, tag = yield ctx.mpi.irecv(src=ANY_SOURCE,
                                                         tag=ANY_TAG)
                    got.append((src, data))
                return sorted(got)
            else:
                ctx.mpi.isend(me * 11, 0, tag=me)
                return None

        res = run(main)
        assert res.results[0] == [(1, 11), (2, 22), (3, 33)]

    def test_non_overtaking_same_src_tag(self):
        def main(ctx):
            me = ctx.rank
            if me == 0:
                for i in range(6):
                    ctx.mpi.isend(i, 1, tag=3)
                return None
            got = []
            for _ in range(6):
                d, _, _ = yield ctx.mpi.irecv(src=0, tag=3)
                got.append(d)
            return got

        res = run(main, nranks=2)
        assert res.results[1] == list(range(6))

    def test_numpy_payload_into_buffer(self):
        def main(ctx):
            me = ctx.rank
            if me == 0:
                ctx.mpi.isend(np.arange(8, dtype=np.int64), 1, tag=0)
                return None
            buf = np.zeros(16, dtype=np.int64)
            data, _, _ = yield ctx.mpi.irecv(src=0, tag=0, buffer=buf)
            assert data is buf
            return buf[:8].tolist()

        res = run(main, nranks=2)
        assert res.results[1] == list(range(8))

    def test_sender_buffer_reusable_after_isend(self):
        def main(ctx):
            me = ctx.rank
            if me == 0:
                buf = np.full(4, 7, dtype=np.int64)
                f = ctx.mpi.isend(buf, 1, tag=0)
                buf[:] = -1  # snapshot semantics: receiver must still see 7s
                yield f
                return None
            data, _, _ = yield ctx.mpi.irecv(src=0, tag=0)
            return data.tolist()

        res = run(main, nranks=2)
        assert res.results[1] == [7, 7, 7, 7]

    def test_isend_await_chains_on_dependency(self):
        def main(ctx):
            me = ctx.rank
            from repro.runtime.api import async_future, charge
            if me == 0:
                box = {"v": None}

                def produce():
                    charge(1e-3)
                    box["v"] = 123

                dep = async_future(produce)
                f = ctx.mpi.isend_await(lambda: box["v"], 1, dep, tag=2)
                yield f
                return None
            data, _, _ = yield ctx.mpi.irecv(src=0, tag=2)
            return data

        res = run(main, nranks=2)
        assert res.results[1] == 123


class TestCollectives:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 8])
    def test_allreduce_sum(self, nranks):
        def main(ctx):
            total = yield ctx.mpi.allreduce_async(ctx.rank + 1, lambda a, b: a + b)
            return total

        res = run(main, nranks=nranks, workers=1)
        assert res.results == [nranks * (nranks + 1) // 2] * nranks

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_from_any_root(self, root):
        def main(ctx):
            val = yield ctx.mpi.bcast_async(
                f"payload-{ctx.rank}" if ctx.rank == root else None, root=root)
            return val

        res = run(main, nranks=3, workers=1)
        assert res.results == [f"payload-{root}"] * 3

    def test_reduce_to_root_only(self):
        def main(ctx):
            v = yield ctx.mpi.reduce_async(2 ** ctx.rank, lambda a, b: a + b,
                                           root=2)
            return v

        res = run(main)
        assert res.results == [None, None, 15, None]

    def test_gather_and_allgather(self):
        def main(ctx):
            g = yield ctx.mpi.gather_async(ctx.rank * 2, root=0)
            ag = yield ctx.mpi.allgather_async(ctx.rank + 100)
            return (g, ag)

        res = run(main)
        assert res.results[0][0] == [0, 2, 4, 6]
        assert all(r[0] is None for r in res.results[1:])
        assert all(r[1] == [100, 101, 102, 103] for r in res.results)

    def test_scatter(self):
        def main(ctx):
            vals = [f"item{i}" for i in range(ctx.nranks)] if ctx.rank == 0 else None
            mine = yield ctx.mpi.scatter_async(vals, root=0)
            return mine

        res = run(main)
        assert res.results == [f"item{i}" for i in range(4)]

    def test_alltoall_permutation(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            got = yield ctx.mpi.alltoall_async([me * 10 + d for d in range(n)])
            return got

        res = run(main)
        for r, got in enumerate(res.results):
            assert got == [s * 10 + r for s in range(4)]

    def test_barrier_synchronizes_virtual_time(self):
        from repro.runtime.api import charge, now

        def main(ctx):
            if ctx.rank == 0:
                charge(5e-3)  # straggler
            yield ctx.mpi.barrier_async()
            return now()

        res = run(main)
        assert all(t >= 5e-3 for t in res.results)

    def test_consecutive_collectives_do_not_crosstalk(self):
        def main(ctx):
            a = yield ctx.mpi.allreduce_async(1, lambda x, y: x + y)
            b = yield ctx.mpi.allreduce_async(2, lambda x, y: x + y)
            c = yield ctx.mpi.allgather_async(ctx.rank)
            return (a, b, c)

        res = run(main)
        assert all(r == (4, 8, [0, 1, 2, 3]) for r in res.results)

    def test_waitall(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            sends = [ctx.mpi.isend(me, d, tag=4) for d in range(n) if d != me]
            recvs = [ctx.mpi.irecv(tag=4) for _ in range(n - 1)]
            vals = yield ctx.mpi.waitall_future(recvs)
            yield ctx.mpi.waitall_future(sends)
            return sorted(v[0] for v in vals)

        res = run(main)
        for r, got in enumerate(res.results):
            assert got == sorted(set(range(4)) - {r})


class TestConfigurationErrors:
    def test_funneled_assertion_rejects_flat_policy(self):
        # "flat" paths put the interconnect on one worker only, so build a
        # policy violation intentionally: dedicated_comm keeps one owner,
        # so use a custom config where every worker sees the interconnect.
        def main(ctx):
            return None

        cfg = ClusterConfig(nodes=1, ranks_per_node=1, workers_per_rank=2)
        # default policy is funneled -> fine
        spmd_run(main, cfg, module_factories=[mpi_factory()])

    def test_rank_failure_surfaces_with_rank_id(self):
        def main(ctx):
            if ctx.rank == 2:
                raise RuntimeError("rank2 exploded")
            return 1

        with pytest.raises(ConfigError, match="rank 2"):
            run(main)

    def test_peer_out_of_range(self):
        def main(ctx):
            ctx.mpi.isend(1, 99)

        with pytest.raises(ConfigError, match="out of range"):
            run(main)

    def test_negative_user_tag_rejected(self):
        def main(ctx):
            ctx.mpi.isend(1, 0, tag=-3)

        with pytest.raises(ConfigError, match="tag"):
            run(main, nranks=2)


class TestTimingShape:
    def test_bigger_messages_take_longer(self):
        def main_factory(nbytes):
            def main(ctx):
                if ctx.rank == 0:
                    ctx.mpi.isend(np.zeros(nbytes, dtype=np.uint8), 1, tag=0)
                    return None
                yield ctx.mpi.irecv(src=0, tag=0)
                return None
            return main

        small = run(main_factory(1_000), nranks=2).makespan
        big = run(main_factory(1_000_000), nranks=2).makespan
        assert big > small * 5

    def test_hybrid_fewer_messages_than_flat_for_alltoall(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            yield ctx.mpi.alltoall_async([np.zeros(64) for _ in range(n)])
            return None

        flat = spmd_run(main, ClusterConfig(nodes=2, ranks_per_node=4,
                                            workers_per_rank=1),
                        module_factories=[mpi_factory()])
        hybrid = spmd_run(main, ClusterConfig(nodes=2, ranks_per_node=1,
                                              workers_per_rank=4),
                          module_factories=[mpi_factory()])
        assert flat.fabric.messages_sent > hybrid.fabric.messages_sent
