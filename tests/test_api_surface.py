"""The paper-facing API surface: the module-injected HiPER namespace
(``runtime.ops``, paper §II-C item 4), combinator APIs in tasks, presets,
and a literal rendering of the paper's §II-D composition listing."""

import numpy as np
import pytest

from repro.apps import presets
from repro.cuda import cuda_factory
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.runtime.api import async_copy_await, async_future
from repro.runtime.future import satisfied_future, when_any
from repro.shmem import shmem_factory
from repro.upcxx import upcxx_factory
from repro.util.errors import ConfigError


def titan_cluster(nodes=2, workers=4):
    return ClusterConfig(nodes=nodes, ranks_per_node=1,
                         workers_per_rank=workers, machine=machine("titan"))


class TestOpsNamespace:
    """The paper's global-namespace extension: familiar spellings."""

    def test_mpi_namespace_functions(self):
        def main(ctx):
            ops = ctx.runtime.ops
            me, n = ctx.rank, ctx.nranks
            # the paper's spellings, straight off the runtime namespace
            f = ops.MPI_Isend(me * 2, (me + 1) % n, tag=1)
            data, _, _ = yield ops.MPI_Irecv(src=(me - 1) % n, tag=1)
            yield f
            total = ops.MPI_Allreduce(data, lambda a, b: a + b)
            return total

        res = spmd_run(main, titan_cluster(),
                       module_factories=[mpi_factory()])
        assert res.results == [0 + 2] * 2

    def test_shmem_namespace_functions(self):
        def main(ctx):
            ops = ctx.runtime.ops
            sh = ctx.shmem
            sym = ops.shmem_malloc(2, np.int64)  # paper spelling
            yield sh.barrier_all_async()
            old = yield sh.atomic_fetch_add_async(sym, 5, 0)
            yield sh.barrier_all_async()
            # the blocking spellings exist in the namespace (single-rank /
            # leaf use); SPMD mains use the async forms above
            assert callable(ops.shmem_int_fadd)
            assert callable(ops.shmem_barrier_all)
            return int(sym.arr[0]) if ctx.rank == 0 else old

        res = spmd_run(main, titan_cluster(),
                       module_factories=[shmem_factory()])
        assert res.results[0] == 10

    def test_cuda_and_upcxx_namespaces_present(self):
        def main(ctx):
            ops = ctx.runtime.ops
            for name in ("cudaMalloc", "cudaMemcpyAsync", "forasync_cuda",
                         "upcxx_rput", "upcxx_rpc", "upcxx_barrier",
                         "shmem_async_when", "MPI_Isend_await"):
                assert hasattr(ops, name), name
            return True

        res = spmd_run(main, titan_cluster(), module_factories=[
            mpi_factory(), shmem_factory(), cuda_factory(), upcxx_factory()])
        assert all(res.results)


class TestPaperListing:
    def test_section_iid_composition(self):
        """The paper's §II-D HiPER listing, rendered with this API: a ghost
        future feeding MPI_Isend_await, receives feeding a CUDA kernel, and
        async_copy_await stitching them — one timestep of the pattern."""
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            mpi, cu, rt = ctx.mpi, ctx.cuda, ctx.runtime
            N = 64
            ghost = np.zeros(N)

            # ghost_fut = forasync_future([&] (z) { ... });
            def fill_ghost():
                ghost[:] = me + 1.0

            ghost_fut = async_future(fill_ghost, cost=1e-5)

            # reqs[0] = MPI_Isend_await(..., ghost_fut);
            send = mpi.isend_await(lambda: ghost.copy(), (me + 1) % n,
                                   ghost_fut, tag=0)
            # reqs[2] = MPI_Irecv(...);
            recv = mpi.irecv(src=(me - 1) % n, tag=0)

            # forasync_cuda(..., &reqs[2], ...);
            d = cu.malloc(N)
            halo = np.zeros(N)

            def on_recv(_f):
                halo[:] = recv.value()[0]

            recv.on_ready(on_recv)
            kernel = cu.forasync_cuda(
                N, lambda idx: np.add.at(d.data, idx, 1.0),
                await_futures=[recv])

            # async_copy_await(..., reqs[2], ...);
            back = np.zeros(N)
            copy = async_copy_await(back, rt.sysmem, halo, rt.sysmem,
                                    halo.nbytes, [recv, kernel], runtime=rt)
            yield copy
            yield send
            return float(back[0])

        res = spmd_run(main, titan_cluster(),
                       module_factories=[mpi_factory(), cuda_factory()])
        # each rank's halo came from its left neighbor's ghost value
        assert res.results == [2.0, 1.0]


class TestCombinatorsInTasks:
    def test_when_any_in_task(self, sim_rt):
        from repro.runtime.api import charge, timer_future

        def main():
            slow = timer_future(1e-2)
            fast = async_future(lambda: (charge(1e-3), "fast")[1])
            idx, val = when_any([slow, fast]).wait()
            return (idx, val)

        assert sim_rt.run(main) == (1, "fast")

    def test_async_copy_await_failure_propagates(self, sim_rt):
        def main():
            bad = async_future(lambda: 1 / 0)
            f = async_copy_await(np.zeros(4), sim_rt.sysmem, np.ones(4),
                                 sim_rt.sysmem, 32, [bad], runtime=sim_rt)
            with pytest.raises(ZeroDivisionError):
                f.wait()
            return "ok"

        assert sim_rt.run(main) == "ok"

    def test_async_copy_await_with_satisfied_future(self, sim_rt):
        dst = np.zeros(4)

        def main():
            async_copy_await(dst, sim_rt.sysmem, np.ones(4), sim_rt.sysmem,
                             32, [satisfied_future()], runtime=sim_rt).wait()

        sim_rt.run(main)
        assert np.all(dst == 1.0)


class TestPresets:
    def test_all_presets_build(self):
        assert presets.isx_weak_scaling().keys_per_pe > 0
        assert presets.uts_t1xxl().root_children >= 100
        assert presets.graph500_reference().scale == 12
        assert presets.hpgmg_paper().box_dim == 8
        assert presets.hpgmg_paper(scale=2).box_dim == 16
        assert presets.geo_weak_scaling(2.0).nx == 64

    def test_scale_bounds(self):
        with pytest.raises(ConfigError):
            presets.uts_t1xxl(scale=1000)
        with pytest.raises(ConfigError):
            presets.graph500_reference(scale_exponent=40)

    def test_preset_registry(self):
        assert set(presets.PRESETS) == {"isx", "uts", "graph500", "hpgmg",
                                        "geo"}
