"""Polling services (paper §II-C1 flow), statistics hooks (§V tooling),
timers, async_copy dispatch, and the util layer."""

import numpy as np
import pytest

from repro.platform.place import PlaceType
from repro.runtime.api import async_copy, charge, finish, now, timer_future, yield_now
from repro.runtime.future import Promise
from repro.runtime.polling import PollingService
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.stats import RuntimeStats, StatsConfig, TimerRecord


class TestPollingService:
    def test_single_polling_task_for_many_watchers(self, sim_rt):
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=1e-5)
        flags = [False] * 5
        promises = [Promise(f"op{i}") for i in range(5)]

        def main():
            for i in range(5):
                svc.watch(lambda i=i: (flags[i], i), promises[i])
            # all ops complete at t=1ms via a timer
            timer_future(1e-3).on_ready(
                lambda f: flags.__setitem__(slice(None), [True] * 5))
            for p in promises:
                assert p.get_future().wait() is not None or True
            return [p.get_future().value() for p in promises]

        assert sim_rt.run(main) == [0, 1, 2, 3, 4]
        # the service swept repeatedly but existed as one logical poller
        assert svc.sweeps >= 2
        assert svc.outstanding == 0

    def test_interval_bounds_latency_without_kick(self, sim_rt):
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=5e-4, eager_kick=False)
        box = {"done": False}

        def main():
            p = Promise("op")
            svc.watch(lambda: (box["done"], 42), p)
            timer_future(1e-4).on_ready(
                lambda f: box.__setitem__("done", True))
            v = p.get_future().wait()
            return (v, now())

        v, t = sim_rt.run(main)
        assert v == 42
        # completion at 0.1ms, but the poller only notices on its 0.5ms grid
        assert t >= 5e-4

    def test_kick_accelerates_completion(self, sim_rt):
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=5e-4, eager_kick=True)
        box = {"done": False}

        def main():
            p = Promise("op")
            svc.watch(lambda: (box["done"], 1), p)

            def fire(_f):
                box["done"] = True
                svc.kick()

            timer_future(1e-4).on_ready(fire)
            p.get_future().wait()
            return now()

        assert sim_rt.run(main) < 3e-4


class TestTimeApis:
    def test_timer_future_ordering(self, sim_rt):
        order = []

        def main():
            timer_future(3e-3).on_ready(lambda f: order.append("late"))
            timer_future(1e-3).on_ready(lambda f: order.append("early"))
            timer_future(5e-3).wait()
            return order

        assert sim_rt.run(main) == ["early", "late"]

    def test_negative_timer_rejected(self, sim_rt):
        def main():
            timer_future(-1.0)

        with pytest.raises(ConfigError):
            sim_rt.run(main)

    def test_yield_now_lets_other_work_run(self, sim_rt1):
        log = []

        def main():
            def helper():
                log.append("helper")

            finish(lambda: (
                sim_rt1.spawn(helper),
                yield_now(),
                log.append("after-yield"),
            ))
            return log

        out = sim_rt1.run(main)
        assert out.index("helper") < out.index("after-yield")


class TestAsyncCopyCore:
    def test_host_copy_moves_bytes_and_charges(self, sim_rt):
        src = np.arange(64, dtype=np.float64)
        dst = np.zeros(64)

        def main():
            f = async_copy(dst, sim_rt.sysmem, src, sim_rt.sysmem,
                           src.nbytes)
            f.wait()
            return now()

        t = sim_rt.run(main)
        assert np.array_equal(dst, src)
        assert t > 0  # bandwidth cost charged

    def test_zero_byte_copy(self, sim_rt):
        dst = np.zeros(4)

        def main():
            async_copy(dst, sim_rt.sysmem, np.ones(4), sim_rt.sysmem, 0).wait()

        sim_rt.run(main)
        assert np.all(dst == 0)

    def test_noncontiguous_buffer_rejected(self, sim_rt):
        src = np.zeros((8, 8))[:, ::2]

        def main():
            async_copy(np.zeros(32), sim_rt.sysmem, src, sim_rt.sysmem,
                       128).wait()

        with pytest.raises(ConfigError, match="contiguous"):
            sim_rt.run(main)

    def test_undersized_buffer_rejected(self, sim_rt):
        def main():
            async_copy(np.zeros(2), sim_rt.sysmem, np.zeros(100),
                       sim_rt.sysmem, 800).wait()

        with pytest.raises(ConfigError, match="bytes"):
            sim_rt.run(main)

    def test_non_memory_place_rejected(self, sim_rt):
        nic = sim_rt.interconnect

        def main():
            async_copy(np.zeros(4), nic, np.zeros(4), sim_rt.sysmem, 32)

        with pytest.raises(ConfigError, match="not a memory place"):
            sim_rt.run(main)


class TestStats:
    def test_counters_and_timers(self):
        s = RuntimeStats()
        s.count("mpi", "send", 3)
        s.time("mpi", "send", 0.5)
        s.time("mpi", "send", 1.5)
        assert s.counter("mpi", "send") == 3
        rec = s.timer("mpi", "send")
        assert rec.count == 2 and rec.total == 2.0 and rec.mean == 1.0
        assert rec.max == 1.5

    def test_module_time_aggregates(self):
        s = RuntimeStats()
        s.time("cuda", "kernel", 1.0)
        s.time("cuda", "copy", 0.5)
        s.time("mpi", "send", 2.0)
        assert s.module_time("cuda") == 1.5
        assert set(s.modules()) == {"cuda", "mpi"}

    def test_merge(self):
        a, b = RuntimeStats(), RuntimeStats()
        a.count("core", "x")
        b.count("core", "x", 2)
        b.time("core", "y", 1.0)
        a.merge(b)
        assert a.counter("core", "x") == 3
        assert a.timer("core", "y").total == 1.0

    def test_disabled_stats_record_nothing(self):
        s = RuntimeStats(StatsConfig(enabled=False))
        s.count("core", "x")
        s.time("core", "y", 1.0)
        assert s.counter("core", "x") == 0
        assert s.timer("core", "y").count == 0

    def test_report_is_readable(self):
        s = RuntimeStats()
        s.count("mpi", "send")
        s.time("mpi", "recv", 0.25)
        text = s.report()
        assert "mpi" in text and "recv" in text and "send" in text

    def test_worker_activity(self):
        s = RuntimeStats()
        s.worker_activity(0, busy=1.0)
        s.worker_activity(0, idle=0.5)
        assert s.worker_busy[0] == 1.0 and s.worker_idle[0] == 0.5


class TestRngFactoryApi:
    def test_spawn_derives_independent_factory(self):
        f = RngFactory(3)
        child = f.spawn("rank", 2)
        a = child.stream("x").random(4)
        b = RngFactory(3).spawn("rank", 2).stream("x").random(4)
        assert np.array_equal(a, b)
        c = f.stream("x").random(4)
        assert not np.array_equal(a, c)

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_bool_key_rejected(self):
        with pytest.raises(TypeError):
            RngFactory(1).stream(True)

    def test_bad_key_type_rejected(self):
        with pytest.raises(TypeError):
            RngFactory(1).stream(3.14)
