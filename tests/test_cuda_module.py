"""CUDA module: simulated device semantics, streams, copy handlers,
forasync_cuda, and roofline timing."""

import numpy as np
import pytest

from repro.cuda import CudaModule, SimGpu, cuda_factory
from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.platform import discover, machine
from repro.runtime.api import async_copy, now
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ConfigError, GpuError


def run(main, workers=4):
    cfg = ClusterConfig(nodes=1, ranks_per_node=1, workers_per_rank=workers,
                        machine=machine("titan"))
    return spmd_run(main, cfg, module_factories=[cuda_factory()])


class TestDeviceMemory:
    def make_gpu(self):
        return SimGpu(SimExecutor(), mem_bytes=1 << 20)

    def test_malloc_zeroed(self):
        gpu = self.make_gpu()
        d = gpu.malloc(16, np.float64)
        assert np.all(d.data == 0) and d.nbytes == 128

    def test_capacity_enforced(self):
        gpu = self.make_gpu()
        gpu.malloc(1 << 17, np.uint8)
        with pytest.raises(GpuError, match="cudaMalloc"):
            gpu.malloc(1 << 20, np.uint8)

    def test_free_releases_capacity(self):
        gpu = self.make_gpu()
        d = gpu.malloc(1 << 19, np.uint8)
        gpu.free(d)
        gpu.malloc(1 << 19, np.uint8)  # fits again

    def test_double_free_rejected(self):
        gpu = self.make_gpu()
        d = gpu.malloc(8)
        gpu.free(d)
        with pytest.raises(GpuError, match="double free"):
            gpu.free(d)

    def test_use_after_free_rejected(self):
        gpu = self.make_gpu()
        d = gpu.malloc(8)
        gpu.free(d)
        with pytest.raises(GpuError, match="freed"):
            gpu.copy_h2d(d, np.zeros(8))

    def test_cross_device_op_rejected(self):
        ex = SimExecutor()
        g0, g1 = SimGpu(ex, 0), SimGpu(ex, 1)
        d = g0.malloc(8)
        with pytest.raises(GpuError, match="belongs to device"):
            g1.copy_h2d(d, np.zeros(8))


class TestTransfersAndKernels:
    def test_h2d_kernel_d2h_round_trip(self):
        def main(ctx):
            cu = ctx.cuda
            h = np.arange(64, dtype=np.float64)
            d = cu.malloc(64)
            out = np.zeros(64)
            yield cu.memcpy_async(d, h)
            yield cu.kernel_async(lambda: np.sqrt(d.data, out=d.data),
                                  flops=64, bytes_moved=64 * 16)
            yield cu.memcpy_async(out, d)
            return bool(np.allclose(out, np.sqrt(h)))

        assert run(main).results == [True]

    def test_blocking_memcpy(self):
        def main(ctx):
            cu = ctx.cuda
            h = np.full(8, 3.0)
            d = cu.malloc(8)
            cu.memcpy(d, h)  # blocking spelling (plain main, single wait ok)
            return float(d.data.sum())

        assert run(main).results == [24.0]

    def test_stream_fifo_ordering(self):
        def main(ctx):
            cu = ctx.cuda
            d = cu.malloc(4)
            # same stream: kernel then copy must observe kernel's writes
            cu.kernel_async(lambda: d.data.__setitem__(slice(None), 5.0),
                            flops=100, stream=2)
            out = np.zeros(4)
            f = cu.memcpy_async(out, d, stream=2)
            yield f
            return out.tolist()

        assert run(main).results == [[5.0] * 4]

    def test_different_streams_overlap_copies_and_kernels(self):
        def main(ctx):
            cu = ctx.cuda
            dev = cu.device()
            big = 6 * 10**6  # ~1ms each over 6GB/s PCIe
            d1 = cu.malloc(big, np.uint8)
            h = np.zeros(big, np.uint8)
            t0 = now()
            f1 = cu.memcpy_async(d1, h, stream=1)
            f2 = cu.kernel_async(lambda: None, flops=dev.flops * 1e-3, stream=2)
            yield f1
            yield f2
            return now() - t0

        elapsed = run(main).results[0]
        # overlap: total well under the 2ms serial sum
        assert elapsed < 1.7e-3

    def test_kernel_serialization_on_compute_engine(self):
        def main(ctx):
            cu = ctx.cuda
            dev = cu.device()
            t0 = now()
            fs = [cu.kernel_async(lambda: None, flops=dev.flops * 1e-3,
                                  stream=s) for s in range(4)]
            for f in fs:
                yield f
            return now() - t0

        elapsed = run(main).results[0]
        assert elapsed >= 4e-3  # kernels serialize even across streams

    def test_forasync_cuda_executes_vectorized_body(self):
        def main(ctx):
            cu = ctx.cuda
            d = cu.malloc(100)
            yield cu.forasync_cuda(100, lambda idx: np.add.at(d.data, idx, idx))
            out = np.zeros(100)
            yield cu.memcpy_async(out, d)
            return bool(np.allclose(out, np.arange(100.0)))

        assert run(main).results == [True]

    def test_kernel_await_futures_defers_launch(self):
        def main(ctx):
            from repro.runtime.api import async_future, charge
            cu = ctx.cuda
            d = cu.malloc(4)
            dep = async_future(lambda: charge(2e-3))
            f = cu.kernel_async(lambda: d.data.__setitem__(0, 1.0),
                                flops=1, await_futures=[dep])
            yield f
            return now() >= 2e-3 and d.data[0] == 1.0

        assert run(main).results == [True]

    def test_failed_dependency_fails_kernel_future(self):
        def main(ctx):
            from repro.runtime.api import async_future
            cu = ctx.cuda
            bad = async_future(lambda: 1 / 0)
            f = cu.kernel_async(lambda: None, await_futures=[bad])
            try:
                yield f
            except ZeroDivisionError:
                return "propagated"
            return "missed"

        assert run(main).results == ["propagated"]

    def test_memcpy_without_device_array_rejected(self):
        def main(ctx):
            ctx.cuda.memcpy_async(np.zeros(4), np.zeros(4))

        with pytest.raises(ConfigError, match="DeviceArray"):
            run(main)

    def test_oversized_copy_rejected(self):
        def main(ctx):
            cu = ctx.cuda
            d = cu.malloc(4)
            cu.memcpy_async(d, np.zeros(100))

        with pytest.raises(ConfigError, match="copy_h2d"):
            run(main)


class TestCopyHandlers:
    def test_async_copy_dispatches_to_cuda_module(self):
        def main(ctx):
            cu, rt = ctx.cuda, ctx.runtime
            h = np.full(32, 2.5)
            d = cu.malloc(32)
            yield async_copy(d, cu.gpu_place(), h, rt.sysmem, h.nbytes,
                             runtime=rt)
            back = np.zeros(32)
            yield async_copy(back, rt.sysmem, d, cu.gpu_place(), back.nbytes,
                             runtime=rt)
            return bool(np.allclose(back, 2.5))

        res = run(main)
        assert res.results == [True]
        stats = res.contexts[0].runtime.stats
        assert stats.counter("cuda", "async_copy_h2d") == 1
        assert stats.counter("cuda", "async_copy_d2h") == 1

    def test_wrong_buffer_type_for_gpu_place(self):
        def main(ctx):
            cu, rt = ctx.cuda, ctx.runtime
            yield async_copy(np.zeros(4), cu.gpu_place(), np.zeros(4),
                             rt.sysmem, 32, runtime=rt)

        with pytest.raises(ConfigError, match="DeviceArray"):
            run(main)


class TestTimingModel:
    def test_pcie_bandwidth_dominates_large_copies(self):
        def main(ctx):
            cu = ctx.cuda
            n = 12 * 10**6  # 12 MB over 6 GB/s -> ~2 ms
            d = cu.malloc(n, np.uint8)
            t0 = now()
            yield cu.memcpy_async(d, np.zeros(n, np.uint8))
            return now() - t0

        elapsed = run(main).results[0]
        assert elapsed == pytest.approx(2e-3, rel=0.1)

    def test_kernel_roofline_compute_bound(self):
        def main(ctx):
            cu = ctx.cuda
            dev = cu.device()
            t0 = now()
            yield cu.kernel_async(lambda: None, flops=dev.flops * 5e-3)
            return now() - t0

        elapsed = run(main).results[0]
        assert elapsed == pytest.approx(5e-3, rel=0.05)

    def test_kernel_roofline_bandwidth_bound(self):
        def main(ctx):
            cu = ctx.cuda
            dev = cu.device()
            t0 = now()
            yield cu.kernel_async(lambda: None, flops=1.0,
                                  bytes_moved=dev.mem_bw * 3e-3)
            return now() - t0

        elapsed = run(main).results[0]
        assert elapsed == pytest.approx(3e-3, rel=0.05)

    def test_module_requires_gpu_place(self):
        ex = SimExecutor()
        model = discover(machine("edison"), num_workers=2)  # no GPU
        rt = HiperRuntime(model, ex)
        with pytest.raises(Exception, match="gpu_mem"):
            rt.start([CudaModule()])
