"""Regression tests for the three threaded-engine bugs the concurrency
harness flushed out (ISSUE 4 satellites a-c).

Each test fails on the pre-fix engine:

- use-after-shutdown: submit_root/call_later enqueued work no thread could
  ever run and hung until the watchdog fired (satellite a);
- the run_root/block_until watchdogs measured *total* blocking time, so a
  steadily progressing run longer than ``block_timeout`` raised a false
  DeadlockError (satellite b);
- ``block_until`` accepted ``time_source`` but never used it, leaving blocked
  workers' clocks (idle-time accounting) frozen at zero (satellite c).
"""

import time

import pytest

from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform.hwloc import discover, machine
from repro.runtime.api import async_future
from repro.runtime.context import current_context
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import RuntimeStateError


def _threaded_rt(workers=2, block_timeout=20.0):
    ex = ThreadedExecutor(block_timeout=block_timeout)
    model = discover(machine("workstation"), num_workers=workers,
                     with_interconnect=False)
    return HiperRuntime(model, ex).start(), ex


class TestUseAfterShutdown:
    """Satellite (a): a shut-down executor must refuse new work loudly."""

    def test_run_after_shutdown_raises_immediately(self):
        rt, ex = _threaded_rt()
        assert rt.run(lambda: 42) == 42
        rt.shutdown()
        ex.shutdown()
        t0 = time.monotonic()
        with pytest.raises(RuntimeStateError, match="after shutdown"):
            rt.run(lambda: 1)
        # Pre-fix this hung for block_timeout (20 s here) before a
        # DeadlockError; the whole point is failing fast.
        assert time.monotonic() - t0 < 1.0

    def test_call_later_after_shutdown_raises(self):
        rt, ex = _threaded_rt()
        rt.run(lambda: None)
        rt.shutdown()
        ex.shutdown()
        with pytest.raises(RuntimeStateError, match="after shutdown"):
            ex.call_later(0.01, lambda: None)

    def test_shutdown_without_ever_starting_then_submit(self):
        ex = ThreadedExecutor()
        model = discover(machine("workstation"), num_workers=2,
                         with_interconnect=False)
        rt = HiperRuntime(model, ex).start()
        ex.shutdown()  # never started: still marks the executor dead
        with pytest.raises(RuntimeStateError, match="after shutdown"):
            rt.run(lambda: 1)


class TestProgressExtendingWatchdog:
    """Satellite (b): steady progress must never trip the deadlock watchdog,
    however long the run takes in total."""

    def test_long_but_progressing_run_does_not_deadlock(self):
        # Total wall time ~5x block_timeout, but a task completes every
        # ~60 ms; the watchdog deadline must keep extending.
        rt, ex = _threaded_rt(block_timeout=0.3)

        def step(i):
            time.sleep(0.06)
            if i == 0:
                return 0
            return async_future(lambda: step(i - 1), name=f"step-{i}").wait() + 1

        assert rt.run(lambda: step(24)) == 24
        rt.shutdown()
        ex.shutdown()

    def test_true_hang_still_detected_promptly(self):
        from repro.util.errors import DeadlockError

        rt, ex = _threaded_rt(block_timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(DeadlockError, match="watchdog"):
            rt.run(lambda: Promise("never").get_future().wait())
        assert time.monotonic() - t0 < 5.0
        rt.shutdown()
        ex.shutdown()


class TestBlockedClockAccounting:
    """Satellite (c): block_until must honor ``time_source`` — the blocked
    worker's clock advances to the satisfaction timestamp, matching the
    simulated engine's contract (exec/base.py)."""

    def _clock_after_blocking_wait(self, rt, ex, delay):
        out = {}

        def main():
            p = Promise("timer")
            ex.call_later(delay, lambda: p.put("x"))
            p.get_future().wait()
            out["clock"] = current_context().worker.clock
            return out["clock"]

        rt.run(main)
        return out["clock"]

    def test_threaded_blocked_worker_clock_advances(self):
        rt, ex = _threaded_rt()
        clock = self._clock_after_blocking_wait(rt, ex, delay=0.08)
        # Pre-fix the threaded engine ignored time_source and the worker's
        # clock stayed 0.0 forever.
        assert clock >= 0.08 * 0.5  # generous slack for timer jitter
        rt.shutdown()
        ex.shutdown()

    def test_cross_engine_accounting_contract(self):
        """Both engines leave the blocked worker's clock at (>=) the wait's
        satisfaction time; sim is exact in virtual seconds."""
        delay = 0.05

        sim = SimExecutor()
        model = discover(machine("workstation"), num_workers=2)
        srt = HiperRuntime(model, sim).start()

        def main():
            p = Promise("timer")
            sim.call_later(delay, lambda: p.put("x"))
            p.get_future().wait()
            return current_context().worker.clock

        sim_clock = srt.run(main)
        srt.shutdown()
        sim.shutdown()
        assert sim_clock == pytest.approx(delay)

        rt, ex = _threaded_rt()
        thr_clock = self._clock_after_blocking_wait(rt, ex, delay=delay)
        rt.shutdown()
        ex.shutdown()
        assert thr_clock >= delay * 0.5
