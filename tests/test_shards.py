"""Sharded parallel DES tests (ISSUE 10 tentpole).

Covers the :meth:`NetworkModel.lookahead` query, the node-aligned
:class:`ShardPlan`, the ``shards=`` executor plumbing, the ``shards=1``
strict-passthrough guarantee, the sharded <-> flat digest differential
(fixed workloads plus a hypothesis sweep over random SPMD comm programs),
failure paths (rank exceptions, a shard dying mid-window), lifecycle
hygiene (no orphan processes, no leaked segments — the same assertions the
procs backend makes), the window-protocol telemetry, and the CLI
validation surface.
"""

import dataclasses
import multiprocessing
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distrib.spmd import ClusterConfig, SpmdResult, spmd_run
from repro.exec.shards import ShardedSpmdResult, ShardPlan, sharded_spmd_run
from repro.exec.sim import SimExecutor
from repro.net.costmodel import NETWORKS, NetworkModel
from repro.net.topology import FlatTopology
from repro.shmem import shmem_factory
from repro.shmem.shared import leaked_segments
from repro.util.errors import ConfigError, PlaceFailure
from repro.verify.spmd_workloads import run_sharded_workload

NR = 4
CFG = dict(nodes=NR, ranks_per_node=1, seed=0)


def _new_children(before):
    return [p for p in multiprocessing.active_children() if p not in before]


def _flat_executor(**kw):
    return SimExecutor(engine="flat", **kw)


def _run(main_factory, *, shards, **executor_kw):
    cfg = ClusterConfig(**CFG)
    ex = _flat_executor(shards=shards, **executor_kw) if shards else \
        _flat_executor(**executor_kw)
    return spmd_run(main_factory(), cfg,
                    module_factories=[shmem_factory(direct=True)],
                    executor=ex)


# ----------------------------------------------------------------------
# rank mains
# ----------------------------------------------------------------------
def ring_factory():
    """Each rank puts into its right neighbor; returns what it received."""

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        buf = sh.malloc((2,), dtype=np.int64, fill=-1)
        yield sh.barrier_all_async()
        yield sh.put_async(buf, np.full(2, 10 + me, dtype=np.int64),
                           (me + 1) % n)
        yield sh.quiet_async()
        yield sh.barrier_all_async()
        got = np.asarray((yield sh.get_async(buf, me)))
        return (me, [int(x) for x in got])

    return main


def failing_factory():
    """Rank 0 raises; everyone else stalls at the barrier it never reaches."""

    def main(ctx):
        sh = ctx.shmem
        if ctx.rank == 0:
            raise ValueError("boom on rank 0")
        yield sh.barrier_all_async()
        return ctx.rank

    return main


def dying_factory():
    """Rank 2's whole shard process exits hard mid-window."""

    def main(ctx):
        sh = ctx.shmem
        yield sh.barrier_all_async()
        if ctx.rank == 2:
            os._exit(3)
        yield sh.barrier_all_async()
        return ctx.rank

    return main


# ----------------------------------------------------------------------
# NetworkModel.lookahead
# ----------------------------------------------------------------------
class TestLookahead:
    def test_generic_is_two_nics_plus_wire(self):
        m = NETWORKS["generic"]
        assert m.lookahead() == pytest.approx(
            2 * m.inj_overhead + m.latency)
        assert m.lookahead() == pytest.approx(3.5e-6)

    @pytest.mark.parametrize("name,expected",
                             [("aries", 2.9e-6), ("gemini", 3.9e-6)])
    def test_builtin_fabrics(self, name, expected):
        assert NETWORKS[name].lookahead() == pytest.approx(expected)

    def test_builtin_topologies_have_zero_extra_floor(self):
        # Every built-in family contains an adjacent pair, so the topology
        # term contributes nothing and the bound is pure NIC + wire.
        m = NETWORKS["generic"]
        assert m.lookahead(FlatTopology()) == pytest.approx(m.lookahead())

    def test_topology_minimum_raises_the_bound(self):
        class Sparse(FlatTopology):
            def min_extra_latency(self):
                return 1e-6

        m = NETWORKS["generic"]
        assert m.lookahead(Sparse()) == pytest.approx(m.lookahead() + 1e-6)

    def test_zero_lookahead_rejected(self):
        degenerate = dataclasses.replace(
            NETWORKS["generic"], latency=0.0, inj_overhead=0.0)
        with pytest.raises(ConfigError, match="non-positive lookahead"):
            degenerate.lookahead()

    def test_negative_lookahead_rejected(self):
        # Model params are validated non-negative at construction, so a
        # negative bound can only come from a broken topology override.
        class Broken(FlatTopology):
            def min_extra_latency(self):
                return -1e-3

        with pytest.raises(ConfigError, match="non-positive lookahead"):
            NETWORKS["generic"].lookahead(Broken())

    def test_lookahead_is_a_true_minimum_over_transmits(self):
        # No priced message may arrive in less than the reported bound:
        # lookahead is what makes deferring injection to the barrier safe.
        m = NetworkModel()
        bound = m.lookahead()
        for nbytes in (1, 8, 4096, 1 << 20):
            wire = 2 * m.inj_overhead + m.latency + nbytes / m.bandwidth
            assert wire >= bound


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_even_split_covers_contiguously(self):
        plan = ShardPlan.build(8, 4, 2)
        assert plan.bounds == ((0, 2), (2, 4), (4, 6), (6, 8))

    def test_remainder_nodes_go_to_leading_shards(self):
        plan = ShardPlan.build(5, 2, 1)
        assert plan.bounds == ((0, 3), (3, 5))

    def test_partitions_whole_nodes(self):
        # 4 nodes x 4 ranks over 3 shards: every boundary is node-aligned.
        plan = ShardPlan.build(16, 3, 4)
        assert plan.bounds == ((0, 8), (8, 12), (12, 16))
        for lo, hi in plan.bounds:
            assert lo % 4 == 0 and (hi % 4 == 0 or hi == 16)

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ConfigError, match="cannot split 2 node"):
            ShardPlan.build(4, 3, 2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError, match="shards must be >= 1"):
            ShardPlan.build(4, 0)

    def test_shard_of_inverts_bounds(self):
        plan = ShardPlan.build(10, 3, 1)
        for rank in range(10):
            lo, hi = plan.bounds[plan.shard_of(rank)]
            assert lo <= rank < hi
        with pytest.raises(ConfigError, match="out of range"):
            plan.shard_of(10)


# ----------------------------------------------------------------------
# executor plumbing
# ----------------------------------------------------------------------
class TestExecutorPlumbing:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_bad_shard_counts_rejected(self, bad):
        with pytest.raises(ConfigError, match="shards"):
            SimExecutor(engine="flat", shards=bad)

    def test_shards_require_flat_engine(self):
        with pytest.raises(ConfigError, match="requires engine='flat'"):
            SimExecutor(engine="objects", shards=2)

    def test_fault_injection_rejected(self):
        with pytest.raises(ConfigError, match="fault injection"):
            sharded_spmd_run(lambda ctx: None, ClusterConfig(**CFG),
                             executor=_flat_executor(shards=2),
                             fault_injector=object())

    def test_too_many_shards_for_cluster_rejected(self):
        with pytest.raises(ConfigError, match="cannot split"):
            _run(ring_factory, shards=NR + 1)


# ----------------------------------------------------------------------
# shards=1: strict no-overhead passthrough
# ----------------------------------------------------------------------
class TestSingleShardPassthrough:
    def test_golden_digest_and_zero_added_events(self):
        base = _run(ring_factory, shards=0)   # plain flat, no shards kwarg
        one = _run(ring_factory, shards=1)
        # Same in-process result type: the sharding layer never engages.
        assert type(one) is SpmdResult
        assert one.results == base.results
        # Bit-for-bit virtual time and not one event more or fewer.
        assert repr(one.makespan) == repr(base.makespan)
        assert one.executor.events_processed == base.executor.events_processed
        assert one.executor.__class__ is SimExecutor

    def test_perf_smoke_no_child_processes(self):
        before = multiprocessing.active_children()
        _run(ring_factory, shards=1)
        assert _new_children(before) == []


# ----------------------------------------------------------------------
# sharded == flat digests
# ----------------------------------------------------------------------
class TestShardedDifferential:
    @pytest.mark.parametrize("workload", ["isx", "uts"])
    def test_digest_matches_single_runtime_flat(self, workload):
        from repro.verify import differential
        rep = differential(workload, engines=("flat-sim", "sharded"))
        assert rep.ok, rep.describe()
        assert [r.engine for r in rep.runs] == ["flat-sim", "sharded"]

    def test_workloads_without_spmd_twin_compare_on_other_engines(self):
        # isx-dag has no SPMD twin; the SPMD-twin engines (sharded, procs)
        # must be skipped for it instead of crashing the whole sweep.
        from repro.verify import differential
        rep = differential("isx-dag", engines=("sim", "sharded"))
        assert rep.ok, rep.describe()
        assert [r.engine for r in rep.runs] == ["sim"]

    def test_no_runnable_engine_is_a_reported_mismatch(self):
        from repro.verify import differential
        rep = differential("isx-dag", engines=("sharded",))
        assert not rep.ok
        assert "no SPMD twin" in rep.describe()

    @pytest.mark.parametrize("workload", ["uts", "graph500"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_digest_matches_flat_spmd_twin(self, workload, shards):
        flat_digest, _ = run_sharded_workload(workload, nranks=NR, shards=1)
        sharded_digest, _ = run_sharded_workload(
            workload, nranks=NR, shards=shards)
        assert sharded_digest == flat_digest


def _comm_program_factory(ops):
    """SPMD main executing a hypothesis-drawn op list.

    Every rank walks the same list; puts land in per-source slots (disjoint
    writers) and fetch-adds target slot 0 (commutative), so the final state
    is schedule-independent and must agree across any shard count.
    """

    def factory():
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            buf = sh.malloc((n + 1,), dtype=np.int64, fill=0)
            yield sh.barrier_all_async()
            for kind, src, dst, val in ops:
                if kind == "barrier":
                    yield sh.barrier_all_async()
                elif src % n != me:
                    continue
                elif kind == "put":
                    yield sh.put_async(
                        buf, np.asarray([val], dtype=np.int64),
                        dst % n, offset=1 + me)
                else:  # fadd
                    yield sh.atomic_fetch_add_async(buf, val, dst % n)
            yield sh.quiet_async()
            yield sh.barrier_all_async()
            got = np.asarray((yield sh.get_async(buf, me)))
            return (me, [int(x) for x in got])

        return main

    return factory


_OPS = st.lists(
    st.tuples(st.sampled_from(["put", "fadd", "barrier"]),
              st.integers(0, NR - 1), st.integers(0, NR - 1),
              st.integers(1, 99)),
    min_size=1, max_size=10)


class TestShardedPropertyBased:
    @settings(max_examples=5, deadline=None)
    @given(ops=_OPS)
    def test_random_programs_agree_across_shard_counts(self, ops):
        factory = _comm_program_factory(ops)
        baseline = _run(factory, shards=0).results
        for shards in (2, 4):
            res = _run(factory, shards=shards)
            assert res.results == baseline, (shards, ops)


# ----------------------------------------------------------------------
# failure paths + lifecycle hygiene
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_rank_failure_surfaces_root_cause(self):
        with pytest.raises(
                ConfigError,
                match=r"first failure on rank 0: ValueError: boom on rank 0"):
            _run(failing_factory, shards=2)

    def test_straggler_shard_teardown(self):
        before = multiprocessing.active_children()
        with pytest.raises(PlaceFailure, match="died mid-window") as ei:
            _run(dying_factory, shards=2)
        assert ei.value.place == "shard-1"
        deadline = time.monotonic() + 10.0
        while _new_children(before) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert _new_children(before) == []
        assert leaked_segments() == []

    def test_no_orphans_after_clean_run(self):
        before = multiprocessing.active_children()
        res = _run(ring_factory, shards=2)
        assert _new_children(before) == []
        assert leaked_segments() == []
        assert res.results == [(r, [10 + (r - 1) % NR] * 2)
                               for r in range(NR)]


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_window_counters(self):
        res = _run(ring_factory, shards=2)
        assert type(res) is ShardedSpmdResult
        assert res.windows > 0
        assert res.counters["shards.windows"] == res.windows
        assert res.counters["shards.cross_shard_msgs"] > 0
        assert res.counters["shards.cross_shard_bytes"] > 0
        assert len(res.shard_counters) == 2
        for t in res.shard_counters:
            assert t["windows"] == res.windows
            assert t["events_processed"] > 0
            assert t["idle_wall_s"] >= 0.0
            assert t["horizon_final"] > 0.0
        assert any(k.startswith("shmem.") for k in res.counters)

    def test_merged_stats_roundtrip(self):
        res = _run(ring_factory, shards=2)
        merged = res.merged_stats()
        assert merged.to_dict()["counters"]["shards.windows"] == res.windows


# ----------------------------------------------------------------------
# CLI validation
# ----------------------------------------------------------------------
class TestCliValidation:
    def test_shards_rejected_for_procs_backend(self, capsys):
        from repro.cli import main
        assert main(["run", "--backend", "procs", "--app", "isx",
                     "--shards", "2"]) == 2
        assert "sim backend only" in capsys.readouterr().err

    def test_zero_shards_rejected(self, capsys):
        from repro.cli import main
        assert main(["run", "--backend", "sim", "--app", "isx",
                     "--shards", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_shards_require_flat_engine(self, capsys):
        from repro.cli import main
        assert main(["run", "--backend", "sim", "--app", "isx",
                     "--engine", "objects", "--shards", "2"]) == 2
        assert "requires --engine flat" in capsys.readouterr().err
