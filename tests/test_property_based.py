"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.hpgmg.ops import prolong_fv, restrict_fv
from repro.apps.isx.common import IsxConfig, bucket_width, route_keys
from repro.apps.uts.common import pack, unpack
from repro.platform.model import PlatformModel
from repro.platform.place import PlaceType
from repro.runtime.deques import WorkerDeque
from repro.runtime.future import Promise, when_all
from repro.util.rng import RngFactory, splitmix64

_slow = settings(max_examples=25,
                 suppress_health_check=[HealthCheck.too_slow], deadline=None)


class TestDequeSemantics:
    @given(st.lists(st.sampled_from(["push", "pop", "steal"]), max_size=200))
    def test_matches_reference_model(self, ops):
        """Owner pops newest (LIFO end), thieves steal oldest (FIFO end)."""
        dq = WorkerDeque()
        model = []
        counter = 0
        for op in ops:
            if op == "push":
                task = counter
                counter += 1
                dq._items.append(task)  # bypass Task typing for the model
                model.append(task)
            elif op == "pop":
                got = dq.pop()
                want = model.pop() if model else None
                assert got == want
            else:
                got = dq.steal()
                want = model.pop(0) if model else None
                assert got == want
        assert len(dq) == len(model)


class TestRng:
    @given(st.integers(0, 2**32), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_streams_reproducible(self, seed, a, b):
        f = RngFactory(seed)
        x = f.stream("k", a, b).random(4)
        y = f.stream("k", a, b).random(4)
        assert np.array_equal(x, y)

    @given(st.integers(0, 2**32), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_distinct_keys_give_distinct_streams(self, seed, a):
        f = RngFactory(seed)
        x = f.stream("k", a).random(8)
        y = f.stream("k", a + 1).random(8)
        assert not np.array_equal(x, y)

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_splitmix64_stays_in_range(self, x):
        h = splitmix64(x)
        assert 0 <= h < 2**64

    def test_splitmix64_no_collisions_on_sample(self):
        seen = {splitmix64(i) for i in range(10000)}
        assert len(seen) == 10000


class TestFuturesProperties:
    @given(st.permutations(list(range(6))))
    def test_when_all_any_satisfaction_order(self, order):
        ps = [Promise() for _ in range(6)]
        combined = when_all([p.get_future() for p in ps])
        for i in order:
            assert not combined.satisfied or i == order[-1]
            ps[i].put(i * 10)
        assert combined.value() == [i * 10 for i in range(6)]


class TestPlatformProperties:
    @given(st.integers(2, 12), st.data())
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_random_trees(self, n, data):
        """Random connected graphs survive the JSON round trip exactly."""
        m = PlatformModel("rand")
        kinds = [PlaceType.SYSTEM_MEM, PlaceType.GPU_MEM, PlaceType.NVM,
                 PlaceType.DISK, PlaceType.L3_CACHE]
        places = [m.add_place(f"p{i}", kinds[i % len(kinds)], {"i": i})
                  for i in range(n)]
        # random spanning tree keeps it connected
        for i in range(1, n):
            j = data.draw(st.integers(0, i - 1))
            m.add_edge(places[i], places[j])
        extra = data.draw(st.integers(0, n))
        for _ in range(extra):
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(0, n - 1))
            if a != b and not m.has_edge(places[a], places[b]):
                m.add_edge(places[a], places[b])
        m2 = PlatformModel.from_json(m.to_json())
        assert m2.to_json_dict() == m.to_json_dict()
        assert m2.is_connected()

    @given(st.integers(2, 10), st.integers(0, 9), st.integers(0, 9))
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_endpoints_and_adjacency(self, n, a, b):
        m = PlatformModel("chain")
        places = [m.add_place(f"p{i}", PlaceType.SYSTEM_MEM if i == 0
                              else PlaceType.NVM) for i in range(n)]
        for i in range(1, n):
            m.add_edge(places[i - 1], places[i])
        src, dst = places[a % n], places[b % n]
        path = m.shortest_path(src, dst)
        assert path[0] is src and path[-1] is dst
        assert len(path) == abs(a % n - b % n) + 1
        for u, v in zip(path, path[1:]):
            assert m.has_edge(u, v)


class TestIsxProperties:
    @given(st.integers(1, 32), st.integers(1, 2000), st.integers(2, 10**6))
    @_slow
    def test_route_conserves_and_respects_ranges(self, npes, nkeys, max_key):
        cfg = IsxConfig(keys_per_pe=nkeys, max_key=max_key)
        rng = np.random.default_rng(npes * 31 + nkeys)
        keys = rng.integers(0, max_key, size=nkeys, dtype=np.int64)
        grouped, counts = route_keys(cfg, npes, keys)
        assert counts.sum() == nkeys
        assert np.array_equal(np.sort(grouped), np.sort(keys))
        w = bucket_width(cfg, npes)
        pos = 0
        for pe in range(npes):
            block = grouped[pos : pos + counts[pe]]
            if block.size:
                assert block.min() >= pe * w and block.max() < (pe + 1) * w
            pos += counts[pe]


class TestUtsPackProperties:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_identity(self, state, depth):
        lanes = pack((state, depth))
        assert unpack(*lanes) == (state, depth)


class TestHpgmgTransferProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
           st.integers(0, 10**6))
    @_slow
    def test_variational_adjoint_identity(self, nz, nx, ny, seed):
        """<P uc, rf> == 8 <uc, R rf> for arbitrary fields."""
        rng = np.random.default_rng(seed)
        uc = rng.standard_normal((nz, nx, ny))
        rf = rng.standard_normal((2 * nz, 2 * nx, 2 * ny))
        lhs = float(np.sum(prolong_fv(uc) * rf))
        rhs = 8.0 * float(np.sum(uc * restrict_fv(rf)))
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)

    @given(st.integers(1, 4), st.integers(0, 10**6))
    @_slow
    def test_prolong_preserves_constants_in_the_interior(self, n, seed):
        uc = np.ones((n + 2, n + 2, n + 2))
        fine = prolong_fv(uc)
        # away from the zero-ghost boundary the interpolant of 1 is 1
        inner = fine[2:-2, 2:-2, 2:-2]
        assert np.allclose(inner, 1.0)


class TestFabricProperties:
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=40),
           st.integers(0, 3))
    @_slow
    def test_pairwise_fifo_any_sizes(self, sizes, dst):
        from repro.exec.sim import SimExecutor
        from repro.net.costmodel import NetworkModel
        from repro.net.fabric import SimFabric

        ex = SimExecutor()
        fab = SimFabric(ex, 5, NetworkModel())
        seen = []
        for r in range(5):
            if r == (dst + 1) % 5:
                fab.register_sink(r, lambda s, p, t: seen.append(p))
            else:
                fab.register_sink(r, lambda s, p, t: None)
        for i, nbytes in enumerate(sizes):
            fab.transmit(dst, (dst + 1) % 5, nbytes, i)
        ex.drain()
        assert seen == list(range(len(sizes)))


class TestCollectiveProperties:
    @given(st.integers(1, 9), st.lists(st.integers(-100, 100), min_size=9,
                                       max_size=9))
    @_slow
    def test_allreduce_equals_functools_reduce(self, nranks, values):
        from functools import reduce as freduce

        from repro.distrib import ClusterConfig, spmd_run
        from repro.mpi import mpi_factory

        vals = values[:nranks]

        def main(ctx):
            out = yield ctx.mpi.allreduce_async(
                vals[ctx.rank], lambda a, b: a + b)
            return out

        res = spmd_run(
            main,
            ClusterConfig(nodes=nranks, ranks_per_node=1, workers_per_rank=1),
            module_factories=[mpi_factory()],
        )
        want = freduce(lambda a, b: a + b, vals)
        assert res.results == [want] * nranks
