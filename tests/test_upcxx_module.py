"""UPC++ module: global pointers, rput/rget, RPCs, collectives."""

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.upcxx import upcxx_factory
from repro.util.errors import ConfigError, UpcxxError


def run(main, nranks=4, workers=2):
    cfg = ClusterConfig(nodes=nranks, ranks_per_node=1,
                        workers_per_rank=workers)
    return spmd_run(main, cfg, module_factories=[upcxx_factory()])


class TestGlobalPtr:
    def test_pointer_arithmetic(self):
        from repro.upcxx import GlobalPtr
        g = GlobalPtr(2, 5, 10)
        g2 = g + 4
        assert (g2.rank, g2.obj_id, g2.offset) == (2, 5, 14)


class TestRputRget:
    def test_rput_remote_completion_visible(self):
        def main(ctx):
            u = ctx.upcxx
            me, n = ctx.rank, ctx.nranks
            arr = u.shared_array(4, dtype=np.int64)
            yield u.barrier_async()
            # rput completes remotely: after the future, the value IS there
            yield u.rput(np.array([me]), arr.gptr((me + 1) % n, me % 4))
            yield u.barrier_async()
            return arr.local.tolist()

        res = run(main)
        for r, local in enumerate(res.results):
            left = (r - 1) % 4
            expect = [0, 0, 0, 0]
            expect[left % 4] = left
            assert local == expect

    def test_rget_fetches_remote_block(self):
        def main(ctx):
            u = ctx.upcxx
            me, n = ctx.rank, ctx.nranks
            arr = u.shared_array(3, dtype=np.float64)
            arr.local[:] = me + 0.25
            yield u.barrier_async()
            got = yield u.rget(arr.gptr((me + 2) % n), 3)
            return got.tolist()

        res = run(main)
        for r, got in enumerate(res.results):
            assert got == [((r + 2) % 4) + 0.25] * 3

    def test_rput_out_of_bounds_propagates(self):
        def main(ctx):
            u = ctx.upcxx
            arr = u.shared_array(2)
            yield u.barrier_async()
            try:
                yield u.rput(np.arange(10), arr.gptr(0, 0))
            except UpcxxError:
                return "bounds"
            return "missed"

        res = run(main, nranks=2)
        assert all(r == "bounds" for r in res.results)

    def test_rget_out_of_bounds_propagates(self):
        def main(ctx):
            u = ctx.upcxx
            arr = u.shared_array(2)
            yield u.barrier_async()
            try:
                yield u.rget(arr.gptr(0, 1), 5)
            except UpcxxError:
                return "bounds"
            return "missed"

        res = run(main, nranks=2)
        assert all(r == "bounds" for r in res.results)


class TestRpc:
    def test_rpc_runs_on_target_and_returns(self):
        def main(ctx):
            u = ctx.upcxx
            me, n = ctx.rank, ctx.nranks
            v = yield u.rpc((me + 1) % n, lambda a: a * 2 + 1, me)
            return v

        res = run(main)
        assert res.results == [1, 3, 5, 7]

    def test_rpc_mutates_target_state(self):
        def main(ctx):
            u = ctx.upcxx
            me, n = ctx.rank, ctx.nranks
            arr = u.shared_array(1, dtype=np.int64)
            yield u.barrier_async()
            local = arr.local

            # an RPC that increments the *target's* local block
            def bump(amount, _arr=None):
                local[0] += amount  # noqa: B023 - captured per-rank
                return None

            # each rank asks rank 0 to bump by its rank+1 (send fn bound to
            # rank 0's array via rget side effect is wrong — use rpc closure
            # over the shared registry instead)
            peers = ctx.shared["upcxx-backends"]

            def bump_on_target(amount, obj_id):
                # runs ON the target: resolve the target-local array
                import numpy as _np
                tgt = peers_holder[0]._resolve(obj_id)
                tgt[0] += amount
                return int(tgt[0])

            peers_holder = [peers[0]]
            yield u.rpc(0, bump_on_target, me + 1, arr.obj_id)
            yield u.barrier_async()
            return int(arr.local[0]) if me == 0 else None

        res = run(main)
        assert res.results[0] == sum(range(1, 5))

    def test_rpc_exception_propagates_to_caller(self):
        def main(ctx):
            u = ctx.upcxx

            def boom():
                raise ValueError("remote failure")

            try:
                yield u.rpc(0, boom)
            except ValueError as e:
                return str(e)
            return "missed"

        res = run(main, nranks=2)
        assert all(r == "remote failure" for r in res.results)

    def test_rpc_target_out_of_range(self):
        def main(ctx):
            ctx.upcxx.rpc(99, lambda: None)

        with pytest.raises(ConfigError, match="out of range"):
            run(main, nranks=2)

    def test_rpcs_count_in_stats(self):
        def main(ctx):
            yield ctx.upcxx.rpc(0, lambda: 1)
            return None

        res = run(main, nranks=2)
        stats0 = res.contexts[0].runtime.stats
        assert stats0.counter("upcxx", "rpc_in") == 2


class TestCollectives:
    def test_allreduce_and_broadcast(self):
        def main(ctx):
            u = ctx.upcxx
            total = yield u.allreduce_async(ctx.rank, lambda a, b: a + b)
            val = yield u.broadcast_async(
                "from3" if ctx.rank == 3 else None, root=3)
            return (total, val)

        res = run(main)
        assert all(r == (6, "from3") for r in res.results)

    def test_barrier_alignment(self):
        from repro.runtime.api import charge, now

        def main(ctx):
            if ctx.rank == 1:
                charge(3e-3)
            yield ctx.upcxx.barrier_async()
            return now()

        res = run(main)
        assert all(t >= 3e-3 for t in res.results)
