"""A complete third-party module written OUTSIDE repro.* — the paper's
extensibility claim, proven end to end (docs/writing-a-module.md walks
through this file).

The module is a "key-value cache service": it owns the NVM place, provides
taskified synchronous gets, polling-flow asynchronous puts, registers a copy
handler, exports namespace functions, and advertises a capability.
"""

import numpy as np
import pytest

from repro.exec.sim import SimExecutor
from repro.modules import HiperModule
from repro.platform import MachineSpec, PlaceType, discover
from repro.runtime.api import charge, now, timer_future
from repro.runtime.future import Future, Promise
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ModuleError


class _FakeBackendOp:
    """Stand-in for third-party hardware: completes after a virtual delay."""

    def __init__(self, executor, delay: float, value):
        self.done = False
        self.value = value
        executor.call_later(delay, self._finish)
        self._on_complete = None

    def _finish(self):
        self.done = True
        if self._on_complete:
            self._on_complete()

    def test(self):
        return self.done


class KvCacheModule(HiperModule):
    """The worked example from docs/writing-a-module.md."""

    name = "kvcache"
    capabilities = frozenset({"storage", "cache"})

    LATENCY = 2e-4  # virtual seconds per backend op

    def initialize(self, runtime):
        self.require_place_type(runtime, PlaceType.NVM)
        self.place = runtime.model.first_of_type(PlaceType.NVM)
        self.runtime = runtime
        self.store = {}
        self.polling = PollingService(runtime, self.place, module=self.name)
        runtime.register_copy_handler(
            PlaceType.NVM, PlaceType.SYSTEM_MEM, self._copy_out)
        self.export(runtime, "kv_put_async", self.put_async)
        self.export(runtime, "kv_get", self.get)
        self.finalized = False

    def finalize(self, runtime):
        self.finalized = True

    # polling flow (asynchronous puts)
    def put_async(self, key, value) -> Future:
        op = _FakeBackendOp(self.runtime.executor, self.LATENCY,
                            ("stored", key))
        op._on_complete = self.polling.kick
        self.store[key] = np.asarray(value).copy()
        promise = Promise(name=f"kv-put-{key}")
        self.polling.watch(
            lambda: (True, op.value) if op.test() else (False, None), promise)
        self.runtime.stats.count(self.name, "put")
        return promise.get_future()

    # taskify flow (synchronous-looking gets)
    def get(self, key):
        def _comm():
            yield timer_future(self.LATENCY)  # the backend round trip
            if key not in self.store:
                raise KeyError(key)
            return self.store[key].copy()

        fut = self.runtime.spawn(_comm, place=self.place, module=self.name,
                                 return_future=True)
        self.runtime.stats.count(self.name, "get")
        return fut.wait()

    # special-purpose copy handler: async_copy(NVM -> sysmem)
    def _copy_out(self, rt, dst_buf, dst_place, src_buf, src_place, nbytes):
        # src_buf is the key string by this module's convention
        def _comm():
            yield timer_future(self.LATENCY)
            data = self.store[src_buf]
            flat = dst_buf.reshape(-1).view(np.uint8)
            flat[:nbytes] = data.reshape(-1).view(np.uint8)[:nbytes]

        fut = self.runtime.spawn(_comm, place=self.place, module=self.name,
                                 return_future=True)
        return fut


@pytest.fixture
def kv_rt():
    spec = MachineSpec(name="kv-box", sockets=1, cores_per_socket=4,
                       nvm_bytes=1 << 30)
    ex = SimExecutor()
    model = discover(spec, num_workers=4, with_interconnect=False)
    rt = HiperRuntime(model, ex).start([KvCacheModule()])
    yield rt
    rt.shutdown()


class TestThirdPartyModule:
    def test_lifecycle(self, kv_rt):
        mod = kv_rt.module("kvcache")
        assert not mod.finalized
        kv_rt.shutdown()
        assert mod.finalized

    def test_namespace_exports(self, kv_rt):
        def main():
            kv_rt.ops.kv_put_async("a", np.arange(4)).wait()
            return kv_rt.ops.kv_get("a").tolist()

        assert kv_rt.run(main) == [0, 1, 2, 3]

    def test_polling_flow_costs_backend_latency(self, kv_rt):
        mod = kv_rt.module("kvcache")

        def main():
            f = mod.put_async("k", np.zeros(2))
            f.wait()
            return now()

        assert kv_rt.run(main) >= KvCacheModule.LATENCY

    def test_puts_overlap_compute(self, kv_rt):
        mod = kv_rt.module("kvcache")

        def main():
            futs = [mod.put_async(f"k{i}", np.zeros(2)) for i in range(8)]
            charge(KvCacheModule.LATENCY)  # useful work during the I/O
            for f in futs:
                f.wait()
            return now()

        # 8 concurrent puts + overlapped compute ≈ one latency, not nine
        assert kv_rt.run(main) < KvCacheModule.LATENCY * 2.5

    def test_taskified_get_missing_key_raises(self, kv_rt):
        mod = kv_rt.module("kvcache")

        def main():
            with pytest.raises(KeyError):
                mod.get("ghost")
            return "ok"

        assert kv_rt.run(main) == "ok"

    def test_copy_handler_dispatch(self, kv_rt):
        from repro.runtime.api import async_copy

        mod = kv_rt.module("kvcache")
        nvm = kv_rt.model.first_of_type(PlaceType.NVM)

        def main():
            mod.put_async("blob", np.arange(16, dtype=np.int64)).wait()
            out = np.zeros(16, dtype=np.int64)
            async_copy(out, kv_rt.sysmem, "blob", nvm, out.nbytes,
                       runtime=kv_rt).wait()
            return out.tolist()

        assert kv_rt.run(main) == list(range(16))

    def test_capability_discovery(self, kv_rt):
        assert [m.name for m in kv_rt.query_modules("cache")] == ["kvcache"]

    def test_stats_attribution(self, kv_rt):
        def main():
            kv_rt.ops.kv_put_async("s", np.zeros(1)).wait()
            kv_rt.ops.kv_get("s")

        kv_rt.run(main)
        assert kv_rt.stats.counter("kvcache", "put") == 1
        assert kv_rt.stats.counter("kvcache", "get") == 1


class TestFutureThen:
    def test_then_chains_values(self, sim_rt):
        from repro.runtime.api import async_future

        def main():
            f = async_future(lambda: 6).then(lambda v: v * 7)
            return f.wait()

        assert sim_rt.run(main) == 42

    def test_then_propagates_exceptions(self, sim_rt):
        from repro.runtime.api import async_future

        def main():
            f = async_future(lambda: 1 / 0).then(lambda v: v + 1)
            with pytest.raises(ZeroDivisionError):
                f.wait()
            g = async_future(lambda: 1).then(lambda v: v / 0)
            with pytest.raises(ZeroDivisionError):
                g.wait()
            return "ok"

        assert sim_rt.run(main) == "ok"


class TestTopology:
    def test_torus_distances(self):
        from repro.net import TorusTopology

        t = TorusTopology([4, 4, 4])
        assert t.hops(0, 0) == 0
        # coords wrap: distance 3 along one axis is 1 hop the short way
        a = 0          # (0,0,0)
        b = 3          # (0,0,3)
        assert t.hops(a, b) == 1
        assert t.diameter(16) <= 6

    def test_dragonfly_three_hop_max(self):
        from repro.net import DragonflyTopology

        d = DragonflyTopology(group_size=4)
        assert d.hops(0, 1) == 1     # same group
        assert d.hops(0, 5) == 3     # cross-group
        assert d.extra_latency(0, 5) == pytest.approx(2 * d.per_hop_latency)

    def test_topology_slows_distant_pairs(self):
        from repro.exec.sim import SimExecutor
        from repro.net import NetworkModel, SimFabric, TorusTopology

        def delivery_time(topology):
            ex = SimExecutor()
            fab = SimFabric(ex, 64, NetworkModel(), topology=topology)
            seen = []
            fab.register_sink(63, lambda s, p, t: seen.append(t))
            fab.transmit(0, 63, 100, "x")
            ex.drain()
            return seen[0]

        from repro.net import FlatTopology
        flat = delivery_time(FlatTopology())
        torus = delivery_time(TorusTopology.fit(64))
        assert torus > flat

    def test_fit_covers_node_count(self):
        from repro.net import TorusTopology

        for n in (1, 7, 27, 100):
            t = TorusTopology.fit(n)
            assert t.size >= n
