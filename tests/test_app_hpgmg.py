"""HPGMG-FV: operator identities, serial convergence, distributed solver
equivalence across both halo strategies."""

import numpy as np
import pytest

from repro.apps.hpgmg import (
    DistributedMg,
    HpgmgConfig,
    SerialMg,
    apply_op,
    hpgmg_main,
    interior,
    manufactured_problem,
    prolong_fv,
    restrict_fv,
)
from repro.apps.hpgmg.ops import alloc_field, gsrb, jacobi, norm2, residual
from repro.distrib import ClusterConfig, spmd_run
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.upcxx import upcxx_factory
from repro.util.errors import ConfigError


def run_hpgmg(variant, cfg, nranks=2, workers=2):
    cluster = ClusterConfig(nodes=nranks, ranks_per_node=1,
                            workers_per_rank=workers,
                            machine=machine("edison"))
    return spmd_run(hpgmg_main(variant, cfg), cluster,
                    module_factories=[mpi_factory(), upcxx_factory()])


class TestOperators:
    def test_apply_op_on_constant_interiorless(self):
        u = alloc_field((4, 4, 4))
        interior(u)[...] = 1.0
        au = apply_op(u, 0.5)
        # center cells see 6 neighbors -> Au = 0; face cells see ghosts (0)
        assert au[1, 1, 1] == pytest.approx(0.0)
        assert au[0, 1, 1] == pytest.approx(1.0 / 0.25)

    def test_residual_zero_at_solution(self):
        n = 8
        h = 1.0 / n
        u_exact, f = manufactured_problem(n, n, n, h)
        u = alloc_field((n, n, n))
        interior(u)[...] = u_exact
        fg = alloc_field((n, n, n))
        interior(fg)[...] = f
        assert np.max(np.abs(residual(u, fg, h))) < 1e-10

    def test_jacobi_reduces_residual(self):
        n = 8
        h = 1.0 / n
        _, f = manufactured_problem(n, n, n, h)
        fg = alloc_field((n, n, n))
        interior(fg)[...] = f
        u = alloc_field((n, n, n))
        r0 = norm2(residual(u, fg, h))
        for _ in range(5):
            interior(u)[...] = jacobi(u, fg, h)
        assert norm2(residual(u, fg, h)) < r0

    def test_gsrb_colors_partition_cells(self):
        u = alloc_field((4, 4, 4))
        f = alloc_field((4, 4, 4))
        interior(f)[...] = 1.0
        gsrb(u, f, 1.0, 0)
        red_cells = int(np.count_nonzero(interior(u)))
        gsrb(u, f, 1.0, 1)
        all_cells = int(np.count_nonzero(interior(u)))
        assert red_cells == 32 and all_cells == 64

    def test_gsrb_global_parity_offset(self):
        """Distributed slabs must color by GLOBAL z; offsetting by one plane
        flips the mask."""
        u1 = alloc_field((2, 2, 2))
        f = alloc_field((2, 2, 2))
        interior(f)[...] = 1.0
        gsrb(u1, f, 1.0, 0, global_z0=0)
        u2 = alloc_field((2, 2, 2))
        gsrb(u2, f, 1.0, 0, global_z0=1)
        assert not np.array_equal(u1, u2)

    def test_restrict_prolong_adjoint_pair(self):
        """<P uc, rf> == 8 <uc, R rf> (the variational scaling)."""
        rng = np.random.default_rng(1)
        uc = rng.random((2, 2, 2))
        rf = rng.random((4, 4, 4))
        lhs = float(np.sum(prolong_fv(uc) * rf))
        rhs = 8.0 * float(np.sum(uc * restrict_fv(rf)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_restrict_constant_preserved(self):
        r = np.ones((4, 4, 4))
        rc = restrict_fv(r)
        # interior coarse cell of a constant field restricts to < 1 only at
        # boundaries (zero ghosts); all values bounded by 1
        assert rc.max() <= 1.0 + 1e-12


class TestSerialMg:
    def test_mesh_independent_convergence(self):
        for n in (16, 32):
            h = 1.0 / n
            _, f = manufactured_problem(n, n, n, h)
            mg = SerialMg((n, n, n), h)
            _, hist = mg.solve(f, cycles=12, rtol=0)
            factor = hist[-1] / hist[-2]
            assert factor < 0.55, f"n={n} factor {factor}"

    def test_converges_to_discrete_solution(self):
        n = 16
        h = 1.0 / n
        u_exact, f = manufactured_problem(n, n, n, h)
        mg = SerialMg((n, n, n), h)
        u, hist = mg.solve(f, cycles=30, rtol=1e-12)
        assert np.max(np.abs(interior(u) - u_exact)) < 1e-8

    def test_jacobi_smoother_option(self):
        n = 16
        h = 1.0 / n
        _, f = manufactured_problem(n, n, n, h)
        mg = SerialMg((n, n, n), h, smoother="jacobi", nu_pre=3, nu_post=3)
        _, hist = mg.solve(f, cycles=15, rtol=0)
        assert hist[-1] < hist[0] * 1e-2

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigError):
            SerialMg((1, 4, 4), 0.25)

    def test_rejects_unknown_smoother(self):
        with pytest.raises(ConfigError):
            SerialMg((8, 8, 8), 0.125, smoother="chebyshev")


class TestDistributed:
    CFG = HpgmgConfig(box_dim=8, boxes_xy=1, boxes_z_per_rank=1, cycles=6)

    @pytest.mark.parametrize("variant", ["reference", "hiper"])
    def test_converges(self, variant):
        res = run_hpgmg(variant, self.CFG, nranks=2)
        hist = res.results[0][0]
        assert hist[-1] < hist[0] * 1e-3

    def test_all_ranks_agree_on_history(self):
        res = run_hpgmg("reference", self.CFG, nranks=4)
        hists = [r[0] for r in res.results]
        assert all(h == hists[0] for h in hists)

    def test_variants_produce_identical_iterates(self):
        a = run_hpgmg("reference", self.CFG, nranks=2)
        b = run_hpgmg("hiper", self.CFG, nranks=2)
        ua = np.concatenate([r[1] for r in a.results], axis=0)
        ub = np.concatenate([r[1] for r in b.results], axis=0)
        assert np.array_equal(ua, ub)

    def test_matches_serial_solution(self):
        cfg = self.CFG
        nranks = 2
        res = run_hpgmg("reference", cfg, nranks=nranks)
        u_dist = np.concatenate([r[1] for r in res.results], axis=0)
        nzg = cfg.nz_local * nranks
        h = 1.0 / nzg
        u_exact, _ = manufactured_problem(nzg, cfg.nx, cfg.ny, h)
        # after 6 cycles the distributed solve is close to the true solution
        assert np.max(np.abs(u_dist - u_exact)) < 1e-4

    def test_single_rank(self):
        res = run_hpgmg("reference", self.CFG, nranks=1)
        hist = res.results[0][0]
        assert hist[-1] < hist[0] * 1e-3

    def test_weak_scaling_parity_between_variants(self):
        """Fig. 4 shape: HiPER and the reference hybrid are comparable."""
        cfg = HpgmgConfig(box_dim=8, boxes_xy=2, boxes_z_per_rank=2, cycles=4)
        t_ref = run_hpgmg("reference", cfg, nranks=4, workers=4).makespan
        t_hip = run_hpgmg("hiper", cfg, nranks=4, workers=4).makespan
        assert 0.5 < t_hip / t_ref < 2.0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            HpgmgConfig(box_dim=6)
        with pytest.raises(ConfigError, match="unknown HPGMG variant"):
            hpgmg_main("amr", HpgmgConfig())


class TestFullMultigrid:
    def test_fcycle_big_first_step(self):
        """One F-cycle must beat several V-cycles' worth of reduction."""
        n = 32
        h = 1.0 / n
        _, f = manufactured_problem(n, n, n, h)
        mg = SerialMg((n, n, n), h)
        _, hist = mg.fmg_solve(f, vcycles=0)
        assert hist[1] < hist[0] * 0.05  # >20x from the single F-cycle

    def test_fmg_plus_vcycles_converges(self):
        n = 16
        h = 1.0 / n
        u_exact, f = manufactured_problem(n, n, n, h)
        mg = SerialMg((n, n, n), h)
        u, hist = mg.fmg_solve(f, vcycles=6)
        assert np.max(np.abs(interior(u) - u_exact)) < 1e-6
        assert hist[-1] < hist[0] * 1e-5

    def test_fmg_history_monotone(self):
        n = 16
        h = 1.0 / n
        _, f = manufactured_problem(n, n, n, h)
        mg = SerialMg((n, n, n), h)
        _, hist = mg.fmg_solve(f, vcycles=3)
        assert all(b < a for a, b in zip(hist, hist[1:]))
