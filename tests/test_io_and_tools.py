"""Checkpoint module (paper §V future work), storage substrate, tracing
tooling, and inter-module discovery (§IV future direction)."""

import json

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.io import CheckpointModule, SimStore, StorageError, checkpoint_factory
from repro.mpi import mpi_factory
from repro.platform import MachineSpec, discover
from repro.runtime.api import charge, finish, forasync, now
from repro.runtime.runtime import HiperRuntime
from repro.shmem import shmem_factory
from repro.tools import TraceRecorder
from repro.util.errors import ModuleError


NVM_MACHINE = MachineSpec(name="nvm-box", sockets=1, cores_per_socket=4,
                          nvm_bytes=1 << 30)


def nvm_cluster(nodes=1, workers=4):
    return ClusterConfig(nodes=nodes, ranks_per_node=1,
                         workers_per_rank=workers, machine=NVM_MACHINE)


class TestSimStore:
    def make(self, **kw):
        return SimStore(SimExecutor(), **kw)

    def test_write_read_round_trip(self):
        store = self.make()
        data = np.arange(100, dtype=np.float32)
        store.write("a", data)
        op = store.read("a", np.float32, (100,))
        store.executor.drain()
        assert np.array_equal(op.value, data)

    def test_write_is_snapshot(self):
        store = self.make()
        data = np.ones(10)
        store.write("k", data)
        data[:] = -1  # mutation after issue must not affect the checkpoint
        op = store.read("k", np.float64, (10,))
        store.executor.drain()
        assert np.all(op.value == 1)

    def test_capacity_enforced(self):
        store = self.make(capacity_bytes=100)
        with pytest.raises(StorageError, match="full"):
            store.write("big", np.zeros(1000))

    def test_overwrite_reuses_space(self):
        store = self.make(capacity_bytes=1000)
        store.write("k", np.zeros(100, np.uint8))
        store.executor.drain()
        store.write("k", np.zeros(120, np.uint8))
        store.executor.drain()
        assert store.used_bytes == 120

    def test_missing_key_read(self):
        with pytest.raises(StorageError, match="no object"):
            self.make().read("ghost", np.float64, (1,))

    def test_delete(self):
        store = self.make()
        store.write("k", np.zeros(4))
        store.executor.drain()
        store.delete("k")
        assert not store.exists("k")
        with pytest.raises(StorageError):
            store.delete("k")

    def test_write_serialization_costs_time(self):
        store = self.make(bandwidth=1e6, latency=0.0)  # 1 MB/s
        op1 = store.write("a", np.zeros(1 << 20, np.uint8))  # 1 MB -> 1 s
        op2 = store.write("b", np.zeros(1 << 20, np.uint8))
        store.executor.drain()
        assert op1.completion_time == pytest.approx(1.0, rel=0.05)
        assert op2.completion_time == pytest.approx(2.0, rel=0.05)


class TestCheckpointModule:
    def test_checkpoint_restore_round_trip(self):
        def main(ctx):
            ck = ctx.runtime.module("checkpoint")
            state = {"u": np.arange(50, dtype=np.float64),
                     "iters": np.array([7])}
            yield ck.checkpoint_async("step7", state)
            state["u"][:] = 0  # keep computing; checkpoint is a snapshot
            restored = yield ck.restore_async("step7")
            return (restored["u"].sum(), int(restored["iters"][0]))

        res = spmd_run(main, nvm_cluster(),
                       module_factories=[checkpoint_factory()])
        assert res.results == [(float(np.arange(50).sum()), 7)]

    def test_checkpoint_overlaps_compute(self):
        """The paper's point: checkpoint I/O must NOT extend the critical
        path when there is useful work to overlap with."""
        def main(ctx):
            ck = ctx.runtime.module("checkpoint")
            big = np.zeros(1 << 20)  # 8 MB over ~6 GB/s NVM ≈ 1.4 ms
            f = ck.checkpoint_async("big", {"a": big})
            t0 = now()
            # 4 workers x ~0.35ms compute each ≈ 1.4ms of overlap work
            finish(lambda: forasync(56, lambda i: charge(1e-4), chunks=56))
            compute_done = now() - t0
            yield f
            total = now() - t0
            return (compute_done, total)

        res = spmd_run(main, nvm_cluster(),
                       module_factories=[checkpoint_factory()])
        compute_done, total = res.results[0]
        # I/O overlapped with compute: total ≈ max(io, compute), not sum
        assert total < compute_done + 1.6e-3
        assert total < 2 * compute_done + 1e-3

    def test_restore_unknown_key(self):
        def main(ctx):
            ctx.runtime.module("checkpoint").restore_async("nope")

        with pytest.raises(Exception, match="no checkpoint"):
            spmd_run(main, nvm_cluster(),
                     module_factories=[checkpoint_factory()])

    def test_requires_storage_place(self):
        ex = SimExecutor()
        model = discover(MachineSpec(name="bare", sockets=1,
                                     cores_per_socket=2), num_workers=2)
        rt = HiperRuntime(model, ex)
        with pytest.raises(ModuleError, match="NVM or disk"):
            rt.start([CheckpointModule()])

    def test_periodic_checkpointing(self):
        def main(ctx):
            ck = ctx.runtime.module("checkpoint")
            epochs = []

            def provider(epoch):
                epochs.append(epoch)
                if epoch >= 3:
                    stop()
                    return None
                return {"x": np.array([epoch])}

            stop = ck.checkpoint_every(1e-3, provider)
            from repro.runtime.api import timer_future
            yield timer_future(6e-3)
            return (epochs, ck.checkpoints())

        res = spmd_run(main, nvm_cluster(),
                       module_factories=[checkpoint_factory()])
        epochs, keys = res.results[0]
        assert epochs[:4] == [0, 1, 2, 3]
        assert keys == ["auto-0", "auto-1", "auto-2"]

    def test_distributed_checkpoint(self):
        def main(ctx):
            ck = ctx.runtime.module("checkpoint")
            mine = np.full(32, float(ctx.rank))
            yield ck.checkpoint_async("state", {"slab": mine})
            yield ctx.mpi.barrier_async()
            back = yield ck.restore_async("state")
            return float(back["slab"][0])

        res = spmd_run(main, nvm_cluster(nodes=3),
                       module_factories=[checkpoint_factory(), mpi_factory()])
        assert res.results == [0.0, 1.0, 2.0]


class TestTraceRecorder:
    def run_traced(self):
        ex = SimExecutor()
        tracer = TraceRecorder()
        ex.attach_tracer(tracer)
        model = discover(MachineSpec(name="t", sockets=1, cores_per_socket=4),
                         num_workers=4)
        rt = HiperRuntime(model, ex).start()
        rt.run(lambda: finish(lambda: forasync(
            32, lambda i: charge(1e-4), chunks=32)))
        return tracer, ex

    def test_records_task_segments(self):
        tracer, _ = self.run_traced()
        assert len(tracer) >= 32
        assert all(ev.end >= ev.start for ev in tracer.events)

    def test_module_attribution(self):
        tracer, _ = self.run_traced()
        times = tracer.module_times()
        assert times.get("core", 0) >= 32 * 1e-4 * 0.9

    def test_utilization_reasonable(self):
        tracer, ex = self.run_traced()
        u = tracer.utilization(ex.makespan())
        # help-first blocking nests task segments; per-worker busy time is
        # the interval *union*, so utilization is <= 1 by construction
        assert 0.5 < u <= 1.0

    def test_chrome_trace_is_valid_json(self):
        tracer, _ = self.run_traced()
        doc = json.loads(tracer.to_chrome_trace())
        assert doc["traceEvents"]
        ev = doc["traceEvents"][0]
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(ev)

    def test_summary_mentions_modules(self):
        tracer, _ = self.run_traced()
        assert "core" in tracer.summary()

    def test_max_events_bound(self):
        tracer = TraceRecorder(max_events=2)
        for i in range(5):
            tracer.record(0, 0, "core", "t", 0.0, 1.0)
        assert len(tracer) == 2 and tracer.dropped == 3

    def test_stats_timers_populated_when_traced(self):
        ex = SimExecutor()
        ex.attach_tracer(TraceRecorder())
        model = discover(MachineSpec(name="t", sockets=1, cores_per_socket=2),
                         num_workers=2)
        rt = HiperRuntime(model, ex).start()
        rt.run(lambda: finish(lambda: forasync(
            8, lambda i: charge(1e-5), chunks=8)))
        assert rt.stats.module_time("core") > 0


class TestModuleDiscovery:
    def test_query_by_capability(self):
        def main(ctx):
            rt = ctx.runtime
            comm = rt.query_modules("communication")
            assert [m.name for m in comm] == ["mpi", "shmem"]
            assert [m.name for m in rt.query_modules("atomics")] == ["shmem"]
            assert rt.query_modules("accelerator") == []
            return True

        res = spmd_run(main, nvm_cluster(nodes=2),
                       module_factories=[mpi_factory(), shmem_factory()])
        assert all(res.results)
