"""FinishScope counting semantics and TaskGroupError formatting."""

import pytest

from repro.runtime.finish import FinishScope, TaskGroupError
from repro.util.errors import HiperError


class TestCounting:
    def test_opener_hold_and_close(self):
        s = FinishScope(name="s")
        assert s.pending == 1 and not s.quiescent
        s.close()
        assert s.quiescent

    def test_tasks_delay_quiescence(self):
        s = FinishScope()
        s.task_spawned()
        s.task_spawned()
        s.close()
        assert not s.quiescent
        s.task_completed()
        assert not s.quiescent
        s.task_completed()
        assert s.quiescent

    def test_completion_before_close(self):
        s = FinishScope()
        s.task_spawned()
        s.task_completed()
        assert not s.quiescent  # opener still holds
        s.close()
        assert s.quiescent

    def test_double_close_rejected(self):
        s = FinishScope(name="dbl")
        s.close()
        with pytest.raises(HiperError, match="twice"):
            s.close()

    def test_spawn_into_joined_scope_rejected(self):
        s = FinishScope(name="done")
        s.close()
        with pytest.raises(HiperError, match="joined"):
            s.task_spawned()

    def test_all_done_future_carries_time(self):
        s = FinishScope()
        s.close()
        assert s.all_done_future().satisfied

    def test_parent_chain(self):
        a = FinishScope(name="a")
        b = FinishScope(parent=a, name="b")
        assert b.parent is a


class TestExceptionCollection:
    def test_single_exception_reraised_bare(self):
        s = FinishScope()
        s.task_spawned()
        s.task_completed(ValueError("only"))
        s.close()
        with pytest.raises(ValueError, match="only"):
            s.raise_collected()

    def test_multiple_wrapped_in_group(self):
        s = FinishScope()
        for i in range(7):
            s.task_spawned()
            s.task_completed(KeyError(f"k{i}"))
        s.close()
        with pytest.raises(TaskGroupError) as exc_info:
            s.raise_collected()
        err = exc_info.value
        assert len(err.exceptions) == 7
        assert "7 tasks failed" in str(err)
        assert "+2 more" in str(err)  # message truncates at 5

    def test_collected_cleared_after_raise(self):
        s = FinishScope()
        s.task_spawned()
        s.task_completed(ValueError("x"))
        s.close()
        with pytest.raises(ValueError):
            s.raise_collected()
        s.raise_collected()  # nothing left: no raise

    def test_no_exceptions_no_raise(self):
        s = FinishScope()
        s.close()
        s.raise_collected()

    def test_repr_mentions_state(self):
        s = FinishScope(name="visible")
        assert "visible" in repr(s)
        assert "pending=1" in repr(s)
