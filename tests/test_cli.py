"""The ``python -m repro`` reproduction driver."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "validate" in out

    def test_platform_json(self, capsys):
        assert main(["platform", "titan", "--detail", "flat"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_workers"] == 16
        assert any(p["type"] == "gpu_mem" for p in doc["places"])

    def test_figure_small_sweep(self, capsys):
        assert main(["fig6", "--nodes", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out and "hiper" in out and "mpi_cuda" in out

    def test_g500_small_sweep(self, capsys):
        assert main(["g500", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "Graph500" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5 and "FAIL" not in out

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
