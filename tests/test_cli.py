"""The ``python -m repro`` reproduction driver."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "validate" in out

    def test_platform_json(self, capsys):
        assert main(["platform", "titan", "--detail", "flat"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_workers"] == 16
        assert any(p["type"] == "gpu_mem" for p in doc["places"])

    def test_figure_small_sweep(self, capsys):
        assert main(["fig6", "--nodes", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out and "hiper" in out and "mpi_cuda" in out

    def test_g500_small_sweep(self, capsys):
        assert main(["g500", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "Graph500" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5 and "FAIL" not in out

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_record_parser(self):
        args = build_parser().parse_args(
            ["bench-record", "--fast", "--label", "x", "--out", "l.json"])
        assert args.fast and args.label == "x" and args.out == "l.json"


class TestBenchRecordLedger:
    """Ledger mechanics of repro.bench.record (no benchmark run)."""

    RAW = {
        "datetime": "2026-08-06T00:00:00+00:00",
        "commit_info": {"id": "abc123"},
        "machine_info": {"node": "box", "python_version": "3.11.7"},
        "benchmarks": [{
            "name": "test_spawn_and_join_throughput_sim",
            "extra_info": {"tasks_per_call": 2000},
            "stats": {"ops": 100.0, "mean": 0.01, "median": 0.009,
                      "stddev": 0.001, "rounds": 42},
        }],
    }

    def test_entry_from_pytest_json_and_append(self, tmp_path):
        from repro.bench.record import (append_entry, entry_from_pytest_json,
                                        format_entry, load_ledger)

        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(self.RAW))
        entry = entry_from_pytest_json(str(raw_path), label="baseline")
        assert entry["commit"] == "abc123"
        assert entry["date"] == "2026-08-06T00:00:00+00:00"
        rec = entry["benchmarks"]["test_spawn_and_join_throughput_sim"]
        assert rec["ops_per_sec"] == 100.0 and rec["rounds"] == 42

        ledger = tmp_path / "ledger.json"
        append_entry(str(ledger), entry)
        append_entry(str(ledger), {**entry, "label": "after"})
        entries = load_ledger(str(ledger))
        assert [e["label"] for e in entries] == ["baseline", "after"]

        table = format_entry(entries[1], entries[0])
        assert "1.00x vs baseline" in table

    def test_committed_ledger_has_baseline_and_post_entries(self):
        import os

        from repro.bench.record import load_ledger, repo_root

        entries = load_ledger(
            os.path.join(repo_root(), "BENCH_scheduler.json"))
        assert len(entries) >= 2
        key = "test_spawn_and_join_throughput_sim"
        base, post = entries[0], entries[1]
        ratio = (post["benchmarks"][key]["ops_per_sec"]
                 / base["benchmarks"][key]["ops_per_sec"])
        assert ratio >= 1.5  # the overhaul's acceptance bar


class TestRunAllExitCode:
    """ISSUE 'resilience' satellite (c): ``run-all`` must exit nonzero when
    any check fails (CI gates on the exit code, not the log text)."""

    def test_run_all_is_validate(self):
        args = build_parser().parse_args(["run-all"])
        from repro.cli import cmd_validate
        assert args.fn is cmd_validate

    def test_nonzero_on_failure(self, monkeypatch, capsys):
        import repro.distrib

        def exploding_spmd_run(*a, **kw):
            raise RuntimeError("injected validation failure")

        monkeypatch.setattr(repro.distrib, "spmd_run", exploding_spmd_run)
        assert main(["run-all"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "OK" not in out


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "fig5"])
        assert args.plan == "mixed" and args.seed == 0
        assert args.fn.__name__ == "cmd_chaos"

    def test_unknown_plan_rejected(self, tmp_path, capsys):
        rc = main(["chaos", "fig5", "--plan", str(tmp_path / "missing.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown fault plan" in err and "mixed" in err

    def test_unknown_figure_exits_2(self):
        # argparse rejects a bad figure choice with its own exit code 2 and
        # a message listing the valid choices.
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "fig99"])
        assert exc.value.code == 2

    def test_chaos_smoke_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        # Substitute a tiny target so the smoke run stays fast.
        from repro import cli as cli_mod
        from repro.apps.isx import IsxConfig, isx_main
        from repro.distrib import ClusterConfig
        from repro.platform import machine
        from repro.shmem import shmem_factory

        def tiny_target(fig, scale):
            cfg = IsxConfig(keys_per_pe=400)
            cluster = ClusterConfig(nodes=2, ranks_per_node=1,
                                    workers_per_rank=2,
                                    machine=machine("workstation"))
            return isx_main("hiper", cfg), cluster, [shmem_factory()]

        monkeypatch.setattr(cli_mod, "_profile_target", tiny_target)
        out = tmp_path / "chaos"
        rc = main(["chaos", "fig5", "--plan", "drop", "--seed", "7",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "chaos fig5" in text and "faults injected" in text
        log = json.loads((out / "fault_log.json").read_text())
        assert isinstance(log, list)
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["plan"] == "drop" and metrics["seed"] == 7
        assert metrics["results_ok"] is True
        assert (out / "trace.json").exists()


class TestRunCommand:
    """``repro run``: engine selection and clean exit-2 on bad names."""

    def test_parser_engine_choices(self):
        args = build_parser().parse_args(
            ["run", "--backend", "sim", "--engine", "flat"])
        assert args.engine == "flat"
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "--engine", "slab"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "--backend", "bogus"])
        assert exc.value.code == 2

    def test_sim_engines_agree(self, capsys):
        # The same digest workload on both DES engines: both exit 0 and
        # print identical digests (the engine differential, via the CLI).
        assert main(["run", "--backend", "sim", "--engine", "objects",
                     "--app", "isx"]) == 0
        objects_out = capsys.readouterr().out
        assert main(["run", "--backend", "sim", "--engine", "flat",
                     "--app", "isx"]) == 0
        flat_out = capsys.readouterr().out
        digest = objects_out.split("OK")[1].split("[")[0].strip()
        assert digest in flat_out
        assert "flat engine" in flat_out

    def test_engine_flag_ignored_by_nonsim_backends(self, capsys):
        # flat is the default engine now, so non-sim backends must accept
        # (and ignore) it instead of rejecting the combination — they have
        # no DES engine at all.
        rc = main(["run", "--backend", "threads", "--engine", "flat"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_unknown_launcher_exits_2(self, capsys):
        rc = main(["run", "--backend", "procs", "--launcher", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown launcher" in err and "local" in err
        # Nothing ran: the validation happened before any workload started.
        assert "FAIL" not in capsys.readouterr().out


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.fn.__name__ == "cmd_serve"
        assert args.backends == ["sim"] and args.pool_size == 2
        assert args.uds is None and args.host is None
        assert not args.cold

    def test_flags(self):
        args = build_parser().parse_args(
            ["serve", "--backends", "sim", "threads", "--pool-size", "3",
             "--engine", "flat", "--cold", "--queue-cap", "16"])
        assert args.backends == ["sim", "threads"]
        assert args.pool_size == 3 and args.engine == "flat"
        assert args.cold and args.queue_cap == 16

    def test_bad_backend_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["serve", "--backends", "gpu"])
        assert exc.value.code == 2
