"""Concurrency correctness harness (ISSUE 4 tentpole): strategies, the
schedule-exploring executor, the hybrid race detector, quiesce invariants,
the planted-race fixture, and schedule artifacts."""

import numpy as np
import pytest

from repro.runtime import instrument
from repro.runtime.instrument import Probe, TrackedLock, probed, set_probe
from repro.util.errors import ConfigError
from repro.verify import (
    InterleaveExecutor,
    RaceDetector,
    VerificationError,
    check_quiesce,
    hunt,
    make_strategy,
    replay,
    replay_schedule,
    run_once,
    spawn_storm,
)
from repro.verify.harness import expected_storm_total
from repro.verify.strategies import (
    PCTStrategy,
    PreemptionBoundedStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
)


class _W:
    """Stand-in worker for strategy unit tests."""

    def __init__(self, rank, wid):
        self.rank, self.wid = rank, wid

    def __repr__(self):
        return f"w{self.rank}.{self.wid}"


WORKERS = [_W(0, i) for i in range(4)]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class TestStrategies:
    def test_same_seed_same_choices(self):
        for name in ("random", "pct", "pbound"):
            a = make_strategy(name, seed=7)
            b = make_strategy(name, seed=7)
            picks_a = [a.choose(WORKERS) for _ in range(50)]
            picks_b = [b.choose(WORKERS) for _ in range(50)]
            assert picks_a == picks_b, name

    def test_different_seeds_diverge(self):
        a = make_strategy("random", seed=1)
        b = make_strategy("random", seed=2)
        assert [a.choose(WORKERS) for _ in range(60)] != \
               [b.choose(WORKERS) for _ in range(60)]

    def test_single_candidate_is_forced(self):
        for name in ("random", "pct", "pbound"):
            s = make_strategy(name, seed=0)
            assert s.choose([WORKERS[2]]) is WORKERS[2], name

    def test_pct_runs_highest_priority(self):
        s = PCTStrategy(seed=3, depth=1)  # no change points
        first = s.choose(WORKERS)
        # With fixed priorities and no demotions the same worker wins while
        # enabled.
        assert all(s.choose(WORKERS) is first for _ in range(10))

    def test_pct_depth_validation(self):
        with pytest.raises(ConfigError):
            PCTStrategy(seed=0, depth=0)

    def test_pbound_is_sticky(self):
        s = PreemptionBoundedStrategy(seed=5, bound=0)  # no preemptions
        first = s.choose(WORKERS)
        assert all(s.choose(WORKERS) is first for _ in range(10))
        # ... until the current worker runs dry:
        s.on_no_work(first)
        rest = [w for w in WORKERS if w is not first]
        assert s.choose(rest) in rest

    def test_pbound_respects_preemption_budget(self):
        s = PreemptionBoundedStrategy(seed=11, bound=2, p_preempt=1.0)
        switches = 0
        cur = s.choose(WORKERS)
        for _ in range(50):
            nxt = s.choose(WORKERS)
            if nxt is not cur:
                switches += 1
                cur = nxt
        assert switches == 2

    def test_replay_divergence_raises(self):
        s = ReplayStrategy([(0, 3, "t", 0)])
        with pytest.raises(VerificationError, match="diverged"):
            s.choose(WORKERS[:2])  # worker 3 not enabled

    def test_replay_overrun_raises(self):
        s = ReplayStrategy([])
        with pytest.raises(VerificationError, match="past the recorded"):
            s.choose(WORKERS)

    def test_unknown_strategy_name(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            make_strategy("bogus")


# ----------------------------------------------------------------------
# race detector units
# ----------------------------------------------------------------------
class _FakeLock:
    def __init__(self, lid):
        self.lid = lid


class TestRaceDetector:
    def test_disjoint_locksets_race(self):
        d = RaceDetector()
        # No ambient task context => both events come from "@engine"; force
        # distinct tids by driving the primitive methods directly.
        d._held[("w", 0, 0)] = {1}
        d._held[("w", 0, 1)] = {2}
        import repro.verify.racedetect as rd
        tids = iter([("w", 0, 0), ("w", 0, 1)])
        orig = rd._current_tid
        rd._current_tid = lambda: next(tids)
        try:
            d.on_access(("place", "p", "mask"), True)
            d.on_access(("place", "p", "mask"), True)
        finally:
            rd._current_tid = orig
        assert len(d.races) == 1

    def test_common_lock_no_race(self):
        d = RaceDetector()
        d._held[("w", 0, 0)] = {1, 5}
        d._held[("w", 0, 1)] = {5}
        import repro.verify.racedetect as rd
        tids = iter([("w", 0, 0), ("w", 0, 1)])
        orig = rd._current_tid
        rd._current_tid = lambda: next(tids)
        try:
            d.on_access(("scope", 1, "count"), True)
            d.on_access(("scope", 1, "count"), True)
        finally:
            rd._current_tid = orig
        assert d.races == []

    def test_happens_before_suppresses(self):
        d = RaceDetector()
        import repro.verify.racedetect as rd
        seq = iter([("w", 0, 0), ("w", 0, 0), ("w", 0, 1), ("w", 0, 1)])
        orig = rd._current_tid
        rd._current_tid = lambda: next(seq)
        try:
            d.on_access(("slot", ("p", 0), "items"), True)  # w0 writes
            d.on_sync_release(("promise", 1))               # w0 publishes
            d.on_sync_acquire(("promise", 1))               # w1 observes
            d.on_access(("slot", ("p", 0), "items"), True)  # w1 writes
        finally:
            rd._current_tid = orig
        assert d.races == []

    def test_no_sync_edge_means_race(self):
        d = RaceDetector()
        import repro.verify.racedetect as rd
        seq = iter([("w", 0, 0), ("w", 0, 1)])
        orig = rd._current_tid
        rd._current_tid = lambda: next(seq)
        try:
            d.on_access(("slot", ("p", 0), "items"), True)
            d.on_access(("slot", ("p", 0), "items"), True)
        finally:
            rd._current_tid = orig
        assert len(d.races) == 1

    def test_read_read_never_races(self):
        d = RaceDetector(benign_reads=frozenset())
        import repro.verify.racedetect as rd
        seq = iter([("w", 0, 0), ("w", 0, 1)])
        orig = rd._current_tid
        rd._current_tid = lambda: next(seq)
        try:
            d.on_access(("place", "p", "mask"), False)
            d.on_access(("place", "p", "mask"), False)
        finally:
            rd._current_tid = orig
        assert d.races == []

    def test_benign_whitelist_suppresses_mask_reads(self):
        d = RaceDetector()
        d.on_access(("place", "p", "mask"), False, benign=True)
        d.on_access(("place", "p", "ready"), False)
        assert d.benign_suppressed == 2
        assert d.races == []

    def test_scope_leak_tracking_excludes_daemons(self):
        class S:
            def __init__(self, name):
                self.name = name

        d = RaceDetector()
        kept, daemon, closed = S("finish-x"), S("daemon-r0"), S("finish-y")
        for s in (kept, daemon, closed):
            d.on_scope_created(s)
        d.on_scope_closed(closed)
        assert d.leaked_scopes() == [kept]

    def test_scope_id_reuse_does_not_conflate(self):
        """CPython id() reuse across scope generations must not produce
        false disjoint-lockset races (regression: the detector keys scope
        locations by generation, not raw address)."""
        d = RaceDetector()

        class S:
            name = "s"

        import repro.verify.racedetect as rd
        orig = rd._current_tid
        s1 = S()
        addr = id(s1)
        try:
            rd._current_tid = lambda: ("w", 0, 0)
            d.on_scope_created(s1)
            d._held[("w", 0, 0)] = {1}
            d.on_access(("scope", addr, "count"), True)
            d.on_scope_closed(s1)
            # A "new" scope reusing the same address, touched by another
            # worker under a different lock:
            rd._current_tid = lambda: ("w", 0, 1)
            d.on_scope_created(s1)  # same object = same id = reused address
            d._held[("w", 0, 1)] = {2}
            d.on_access(("scope", addr, "count"), True)
        finally:
            rd._current_tid = orig
        assert d.races == []


# ----------------------------------------------------------------------
# instrumentation plumbing
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_no_probe_by_default(self):
        assert instrument.PROBE is None

    def test_probed_installs_and_restores(self):
        p = Probe()
        with probed(p) as got:
            assert got is p
            assert instrument.PROBE is p
        assert instrument.PROBE is None

    def test_set_probe_returns_previous(self):
        p1, p2 = Probe(), Probe()
        assert set_probe(p1) is None
        assert set_probe(p2) is p1
        assert set_probe(None) is p2

    def test_tracked_lock_reports(self):
        events = []

        class P(Probe):
            def on_lock_acquire(self, lock):
                events.append(("acq", lock.lid))

            def on_lock_release(self, lock):
                events.append(("rel", lock.lid))

        lk = TrackedLock()
        with probed(P()):
            with lk:
                pass
        assert events == [("acq", lk.lid), ("rel", lk.lid)]

    def test_tracked_lock_ids_unique(self):
        assert TrackedLock().lid != TrackedLock().lid


# ----------------------------------------------------------------------
# interleave executor + harness
# ----------------------------------------------------------------------
class TestInterleaveHarness:
    def test_clean_run_all_strategies(self):
        want = expected_storm_total()
        for strat in ("random", "pct", "pbound"):
            out = run_once(strat, seed=1)
            assert out.ok, out.describe()
            assert out.result == want
            assert len(out.schedule) > 0

    def test_seed_replay_is_bit_for_bit(self):
        out = run_once("random", seed=9)
        again = replay(out)
        assert again.digest == out.digest
        assert again.schedule == out.schedule

    def test_different_seeds_explore_different_schedules(self):
        digests = {run_once("random", seed=s).digest for s in range(6)}
        assert len(digests) > 1

    def test_schedule_replay_strategy_reproduces(self):
        out = run_once("pct", seed=4)
        again = replay_schedule(out.schedule)
        assert again.digest == out.digest

    def test_recorded_schedule_entries_shape(self):
        out = run_once("random", seed=0, workers=2)
        for rank, wid, name, seq in out.schedule:
            assert rank == 0
            assert 0 <= wid < 2
            assert isinstance(name, str)
        assert [e[3] for e in out.schedule] == list(range(len(out.schedule)))

    def test_benign_mask_reads_are_exercised_and_suppressed(self):
        out = run_once("random", seed=2)
        assert out.benign_suppressed > 0
        assert not out.races

    def test_planted_race_is_rediscovered(self):
        """The acceptance check: the harness must find the deliberately
        planted occupancy-index race, and the reported seed must reproduce
        the interleaving bit-for-bit."""
        res = hunt("random", seeds=10, planted=True)
        fail = res.first_failure
        assert fail is not None, "planted race not found in 10 seeds"
        assert fail.races, fail.describe()
        # it is the planted bug: a place mask/ready write-write race
        locs = {(r.loc[0], r.loc[2]) for r in fail.races}
        assert locs & {("place", "mask"), ("place", "ready")}
        again = replay(fail, planted=True)
        assert again.digest == fail.digest
        assert again.races

    def test_workload_result_is_schedule_independent(self):
        want = expected_storm_total()
        results = {run_once("pbound", seed=s).result for s in range(5)}
        assert results == {want}

    def test_interleave_uses_tracked_locks(self):
        assert InterleaveExecutor.lock_class is TrackedLock


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
class TestInvariants:
    def test_clean_run_passes(self, sim_rt):
        sim_rt.run(spawn_storm(fanout=3, depth=2))
        rep = check_quiesce(sim_rt)
        assert rep.ok, rep.describe()
        assert rep.spawned == rep.completed
        assert rep.ready_left == 0

    def test_conservation_violation_detected(self, sim_rt):
        sim_rt.run(spawn_storm(fanout=2, depth=2))
        sim_rt.stats.count("core", "tasks_completed", -1)  # corrupt ledger
        rep = check_quiesce(sim_rt)
        assert not rep.ok
        assert any("conservation" in v for v in rep.violations)

    def test_leaked_scope_detected(self):
        class S:
            name = "finish-leaky"

        d = RaceDetector()
        d.on_scope_created(S())

        class RtStub:
            class stats:
                counters = {}

            class deques:
                @staticmethod
                def total_ready():
                    return 0

                @staticmethod
                def snapshot():
                    return {}

        rep = check_quiesce(RtStub(), d)
        assert not rep.ok
        assert rep.leaked_scopes == ["finish-leaky"]


# ----------------------------------------------------------------------
# schedule artifacts
# ----------------------------------------------------------------------
class TestScheduleArtifacts:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.tools.schedule import (artifact_from_outcome,
                                          load_schedule, save_schedule)

        out = run_once("random", seed=0, planted=True)
        art = artifact_from_outcome(out, workers=4, planted=True)
        path = save_schedule(art, str(tmp_path / "sched.json"))
        back = load_schedule(path)
        assert back.seed == out.seed
        assert back.digest == out.digest
        assert back.schedule == out.schedule
        assert back.planted is True

    def test_loaded_artifact_replays(self, tmp_path):
        from repro.tools.schedule import (artifact_from_outcome,
                                          load_schedule, save_schedule)

        out = run_once("pct", seed=2)
        path = save_schedule(artifact_from_outcome(out),
                             str(tmp_path / "s.json"))
        art = load_schedule(path)
        again = replay_schedule(art.schedule, workers=art.workers)
        assert again.digest == art.digest

    def test_format_version_checked(self, tmp_path):
        import json

        from repro.tools.schedule import load_schedule

        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="format"):
            load_schedule(str(p))
