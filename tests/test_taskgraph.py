"""Access-mode task graph: edge inference, commute runs, speculation,
cost-model placement (``repro.taskgraph``).

The differential anchor: every workload here returns a digest that must be
identical across engines and policies — only makespans may differ. The
hypothesis class closes the loop by generating random access-mode programs
and asserting sim (with speculation on) and threads (speculation
auto-disabled) agree bit-for-bit.
"""

import hashlib
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform.hwloc import discover, machine
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.runtime.runtime import HiperRuntime
from repro.taskgraph import (
    CostModel,
    TaskGraph,
    TaskImpl,
    WritePredictor,
    async_task,
    hetero_workload,
    isx_dag_workload,
    reduction_workload,
)
from repro.util.errors import ConfigError, FaultError, RuntimeStateError
from repro.verify.differential import isx_workload, run_on_engine


def _fresh_sim(workers: int = 4):
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=workers,
                     with_interconnect=False)
    return HiperRuntime(model, ex).start(), ex


def _run_fresh(root, workers: int = 4):
    """Run ``root`` on a fresh sim runtime; return (result, makespan)."""
    rt, ex = _fresh_sim(workers)
    try:
        result = rt.run(root, name="tg-root")
        return result, ex.makespan()
    finally:
        rt.shutdown()
        ex.shutdown()


# ---------------------------------------------------------------------------
# access modes and edge inference
# ---------------------------------------------------------------------------
class TestAccessModes:
    def test_read_after_write_edge(self, sim_rt):
        def root():
            g = TaskGraph(name="raw")
            d = g.handle(np.zeros(4, dtype=np.int64), name="d")

            def produce():
                d.data[:] = 7

            def consume():
                return int(d.data.sum())

            g.submit(produce, write=[d], cost=1e-4)
            fut = g.submit(consume, read=[d])
            g.wait()
            return fut.value()

        assert sim_rt.run(root, name="raw-root") == 28

    def test_write_after_read_ordering(self, sim_rt):
        # Readers charge virtual time; the writer is free. Without the WAR
        # edge the writer would run at t=0 and the readers would observe
        # the overwrite; with it they must all see the original data.
        def root():
            g = TaskGraph(name="war")
            d = g.handle(np.arange(8, dtype=np.int64), name="d")
            seen = []

            def reader():
                seen.append(int(d.data.sum()))

            def clobber():
                d.data[:] = 0

            for _ in range(3):
                g.submit(reader, read=[d], cost=1e-3)
            g.submit(clobber, write=[d])
            late = g.submit(lambda: int(d.data.sum()), read=[d])
            g.wait()
            return seen, late.value()

        seen, late = sim_rt.run(root, name="war-root")
        assert seen == [28, 28, 28]  # pre-clobber value, all three readers
        assert late == 0             # RAW edge on the reader behind the write

    def test_version_chain_bumps_per_write(self, sim_rt):
        def root():
            g = TaskGraph(name="versions")
            d = g.handle(np.zeros(1, dtype=np.int64), name="d")
            for _ in range(4):
                g.submit(lambda: None, write=[d])
            g.submit(lambda: None, read=[d])
            g.wait()
            return d.version

        assert sim_rt.run(root, name="ver-root") == 4

    def test_duplicate_write_mode_access_rejected(self, sim_rt):
        def root():
            g = TaskGraph(name="dup")
            d = g.handle(np.zeros(1), name="d")
            with pytest.raises(ConfigError, match="more than one write-mode"):
                g.submit(lambda: None, write=[d], commute=[d])
            g.wait()

        sim_rt.run(root, name="dup-root")

    def test_non_handle_access_rejected(self, sim_rt):
        def root():
            g = TaskGraph(name="bad")
            with pytest.raises(ConfigError, match="DataHandle"):
                g.submit(lambda: None, read=[np.zeros(1)])
            g.wait()

        sim_rt.run(root, name="bad-root")

    def test_async_task_requires_enclosing_graph(self, sim_rt):
        def root():
            with pytest.raises(RuntimeStateError, match="TaskGraph"):
                async_task(lambda: None)

        sim_rt.run(root, name="ambient-root")

    def test_context_manager_waits_and_ambient_submit(self, sim_rt):
        def root():
            with TaskGraph(name="ctx") as g:
                d = g.handle(np.zeros(2, dtype=np.int64), name="d")
                async_task(lambda: d.data.__iadd__(5), write=[d])
            # __exit__ waited: the write is visible here
            return int(d.data.sum())

        assert sim_rt.run(root, name="ctx-root") == 10

    def test_failure_cascades_once(self, sim_rt):
        def root():
            g = TaskGraph(name="boom")
            d = g.handle(np.zeros(1), name="d")

            def bad():
                raise ValueError("producer exploded")

            g.submit(bad, write=[d], name="bad-writer")
            dep = g.submit(lambda: 1, read=[d], name="reader")
            with pytest.raises(ValueError, match="producer exploded"):
                g.wait()
            # The cascaded reader carries the same exception on its future
            # but is not double-counted as a failure.
            with pytest.raises(ValueError):
                dep.value()

        sim_rt.run(root, name="boom-root")

    def test_isx_dag_digest_matches_futures_version(self, sim_rt):
        futures_run = run_on_engine(isx_workload(), "sim")
        dag = sim_rt.run(isx_dag_workload(), name="isx-dag")
        assert dag == futures_run.result

    def test_isx_dag_on_threads(self, threaded_rt):
        futures_run = run_on_engine(isx_workload(), "sim")
        dag = threaded_rt.run(isx_dag_workload(), name="isx-dag")
        assert dag == futures_run.result


# ---------------------------------------------------------------------------
# commutative writes
# ---------------------------------------------------------------------------
class TestCommute:
    def test_commute_matches_ordered_digest_but_reorders(self):
        ordered, t_ordered = _run_fresh(reduction_workload(commute=False))
        commuted, t_commute = _run_fresh(reduction_workload(commute=True))
        # Identical sums; only the commuted run observed a reorder.
        assert ordered[:3] == commuted[:3]
        assert ordered[3] == 0 and commuted[3] == 1
        # Folds start in readiness order, so the pipeline drains faster
        # than the submission-order write chain.
        assert t_commute < t_ordered

    def test_commute_serialized_but_unordered(self, threaded_rt):
        # Real threads: commute bodies on one datum may run in any order
        # but never concurrently.
        active, overlaps = [0], [0]

        def root():
            g = TaskGraph(name="serial")
            acc = g.handle(np.zeros(1, dtype=np.int64), name="acc")

            def fold(i):
                def body():
                    active[0] += 1
                    if active[0] > 1:
                        overlaps[0] += 1
                    time.sleep(0.002)
                    acc.data[0] += i
                    active[0] -= 1
                return body

            for i in range(8):
                g.submit(fold(i), commute=[acc], name=f"fold-{i}")
            g.wait()
            return int(acc.data[0])

        assert threaded_rt.run(root, name="serial-root") == sum(range(8))
        assert overlaps[0] == 0

    def _faulted_reduction(self, seed):
        plan = FaultPlan.from_spec(
            {"seed": seed,
             "faults": [{"kind": "task_fail", "name": "produce-3",
                         "max_faults": 1}]})
        ex = SimExecutor()
        inj = FaultInjector(plan).attach(ex)
        model = discover(machine("workstation"), num_workers=4,
                         with_interconnect=False)
        rt = HiperRuntime(model, ex).start()
        inj.arm_runtime(rt)

        def root():
            n = 6
            g = TaskGraph(name="faulted-reduce")
            slots = [g.handle(None, name=f"slot{i}") for i in range(n)]
            acc = g.handle(np.zeros(1, dtype=np.int64), name="acc")

            def produce(i):
                def body():
                    slots[i].data = np.full(8, i + 1, dtype=np.int64)
                return body

            def fold(i):
                def body():
                    acc.data[0] += int(slots[i].data.sum())
                return body

            for i in range(n):
                g.submit(produce(i), write=[slots[i]], kind="reduce-produce",
                         cost=2e-4 * (n - i), name=f"produce-{i}")
            for i in range(n):
                g.submit(fold(i), read=[slots[i]], commute=[acc],
                         kind="reduce-fold", cost=5e-5, name=f"fold-{i}")
            with pytest.raises(FaultError, match="produce-3"):
                g.wait()
            return int(acc.data[0]), g.commute_reorders

        out = rt.run(root, name="fault-root")
        # Task ids are process-global; strip them for cross-run comparison.
        events = [(t, kind, detail.split(" id=")[0])
                  for t, kind, detail in inj.events]
        rt.shutdown()
        ex.shutdown()
        return out, events

    def test_commute_reordering_under_seeded_fault_injection(self):
        # One producer is killed by the injector: its fold cascades, the
        # commute run must still release its slot so every other fold runs,
        # and the whole thing replays bit-identically from the seed.
        (total, reorders), events = self._faulted_reduction(seed=7)
        assert total == 8 * (1 + 2 + 3 + 5 + 6)  # every slot but the faulted
        assert reorders > 0
        assert [k for _, k, _ in events] == ["task_fail"]
        replay = self._faulted_reduction(seed=7)
        assert replay == ((total, reorders), events)


# ---------------------------------------------------------------------------
# speculation: checkpoint, validation, rollback
# ---------------------------------------------------------------------------
def _spec_program(*, speculation, scrub_writes):
    """prep(1ms) -> scrub(1ms, maybe_write d) -> consume(reads d).

    The prep task delays the uncertain scrub, so a speculative consume
    genuinely runs first in virtual time and reads pre-scrub data —
    exercising a real rollback when the scrub does write.
    """

    def root():
        g = TaskGraph(name="spec", speculation=speculation)
        gate = g.handle(np.zeros(4, dtype=np.int64), name="gate")
        d = g.handle(np.arange(8, dtype=np.int64), name="d")

        def prep():
            gate.data += 1

        def scrub():
            if scrub_writes:
                d.data[:] = d.data * 3 + 1

        def consume():
            return int(d.data.sum())

        g.submit(prep, write=[gate], kind="spec-prep", cost=1e-3)
        g.submit(scrub, read=[gate], maybe_write=[d], kind="spec-scrub",
                 cost=1e-3, likely_writes=False)
        fut = g.submit(consume, read=[d], kind="spec-consume", cost=1e-4)
        g.wait()
        stats = (g.spec_attempts, g.spec_hits, g.spec_rollbacks)
        return (fut.value(), d.data.tobytes(), stats)

    return root


class TestSpeculation:
    def test_correct_prediction_overlaps_and_wins(self):
        spec, t_spec = _run_fresh(
            _spec_program(speculation=True, scrub_writes=False))
        base, t_base = _run_fresh(
            _spec_program(speculation=False, scrub_writes=False))
        assert spec[:2] == base[:2]
        assert spec[2] == (1, 1, 0)   # one attempt, one hit, no rollback
        assert base[2] == (0, 0, 0)
        assert t_spec < t_base        # consume overlapped the scrub

    def test_misprediction_rolls_back_bit_identical(self):
        spec, _ = _run_fresh(
            _spec_program(speculation=True, scrub_writes=True))
        base, _ = _run_fresh(
            _spec_program(speculation=False, scrub_writes=True))
        # The speculative consume read stale data, was rolled back, and
        # replayed: value and payload bytes equal the non-speculative run.
        assert spec[:2] == base[:2]
        assert spec[2] == (1, 0, 1)   # one attempt, no hit, one rollback

    def test_speculation_auto_disabled_off_sim(self, threaded_rt):
        def root():
            g = TaskGraph(name="nospec", speculation=True)
            enabled = g.speculation
            g.wait()
            return enabled

        assert threaded_rt.run(root, name="nospec-root") is False

    def test_predictor_learns_from_history(self):
        p = WritePredictor()
        node = type("N", (), {"likely_writes": None, "kind": "scrub"})()
        assert p.predict_writes(node) is True  # unseen: conservative
        for _ in range(4):
            p.observe("scrub", False)
        assert p.predict_writes(node) is False
        for _ in range(8):
            p.observe("scrub", True)
        assert p.predict_writes(node) is True


# ---------------------------------------------------------------------------
# cost-model placement
# ---------------------------------------------------------------------------
class TestPlacement:
    def test_dmda_beats_help_first_on_hetero_chains(self):
        base, t_base = _run_fresh(hetero_workload(policy="help-first"))
        dmda, t_dmda = _run_fresh(hetero_workload(policy="dmda"))
        assert base == dmda           # placement may never change results
        assert t_dmda < t_base        # big kernels offloaded to the GPU

    def test_cost_model_blends_observations(self):
        cm = CostModel(alpha=0.5)
        assert cm.estimate("k", "cpu") is None
        cm.observe("k", "cpu", 1.0)
        cm.observe("k", "cpu", 0.5)
        est = cm.estimate("k", "cpu")
        assert est is not None and 0.5 < est < 1.0

    def test_multi_impl_tasks_record_per_place_timers(self):
        def root():
            g = TaskGraph(name="impls", policy="dmda")
            d = g.handle(np.zeros(2, dtype=np.int64), name="d")

            def bump():
                d.data += 1

            for _ in range(4):
                g.submit(bump, write=[d], kind="bump",
                         impls=[TaskImpl(bump, "cpu", 1e-3),
                                TaskImpl(bump, "gpu", 1e-4)])
            g.wait()
            return (int(d.data[0]),
                    g.cost_model.observations("bump", "cpu"),
                    g.cost_model.observations("bump", "gpu"))

        rt, ex = _fresh_sim()
        try:
            count, cpu_obs, gpu_obs = rt.run(root, name="impls-root")
            assert count == 4
            # dmda calibrates every uncalibrated arm first, so both the
            # cpu and gpu variants were tried at least once.
            assert cpu_obs >= 1 and gpu_obs >= 1
            timers = {op for (mod, op) in rt.stats.timers if mod == "taskgraph"}
            assert "bump@cpu" in timers and "bump@gpu" in timers
        finally:
            rt.shutdown()
            ex.shutdown()


# ---------------------------------------------------------------------------
# property-based: random access-mode programs, sim == threads
# ---------------------------------------------------------------------------
@st.composite
def _programs(draw):
    nhandles = draw(st.integers(2, 4))
    ntasks = draw(st.integers(1, 10))
    tasks = []
    for _ in range(ntasks):
        tasks.append((
            draw(st.integers(0, nhandles - 1)),          # target handle
            draw(st.integers(0, nhandles - 1)),          # source handle
            draw(st.sampled_from(["write", "commute", "maybe", "read"])),
            draw(st.integers(1, 5)),                     # scale constant
            draw(st.booleans()),                         # maybe: does write
            draw(st.booleans()),                         # maybe: hint
        ))
    return nhandles, tasks


def _run_program(program, engine):
    nhandles, tasks = program
    if engine == "sim":
        ex = SimExecutor()
    else:
        ex = ThreadedExecutor(block_timeout=20.0)
    model = discover(machine("workstation"), num_workers=4,
                     with_interconnect=False)
    rt = HiperRuntime(model, ex).start()
    try:
        def root():
            # Speculation on: the sim run exercises hits *and* rollbacks
            # (the hint is drawn independently of the actual write), and
            # must still match the never-speculating threads run.
            g = TaskGraph(name="prop", speculation=True)
            hs = [g.handle(np.arange(4, dtype=np.int64) + i, name=f"h{i}")
                  for i in range(nhandles)]
            reads = []
            for t, s, mode, k, writes, hint in tasks:
                target, source = hs[t], hs[s]
                if mode == "read":
                    reads.append(g.submit(
                        lambda source=source: int(source.data.sum()),
                        read=[source], kind="p-read", cost=1e-5))
                    continue
                if t == s:
                    def body(target=target, k=k):
                        target.data += k
                    acc = {}
                else:
                    def body(target=target, source=source, k=k):
                        target.data += k * int(source.data.sum())
                    acc = {"read": [source]}
                if mode == "write":
                    g.submit(body, write=[target], kind="p-write",
                             cost=1e-5, **acc)
                elif mode == "commute":
                    g.submit(body, commute=[target], kind="p-commute",
                             cost=1e-5, **acc)
                else:
                    def mbody(body=body, writes=writes):
                        if writes:
                            body()
                    g.submit(mbody, maybe_write=[target], kind="p-maybe",
                             cost=1e-5, likely_writes=hint, **acc)
            g.wait()
            h = hashlib.sha256()
            for hd in hs:
                h.update(hd.data.tobytes())
            return (h.hexdigest(), tuple(f.value() for f in reads))

        return rt.run(root, name="prop-root")
    finally:
        rt.shutdown()
        ex.shutdown()


class TestRandomGraphs:
    @given(_programs())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sim_and_threads_agree(self, program):
        assert _run_program(program, "sim") == _run_program(program, "threads")
