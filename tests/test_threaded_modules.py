"""Single-rank module usage on the REAL OS-thread executor: the CUDA and
checkpoint modules must work with wall-clock timers and true concurrency,
proving the module layer is engine-agnostic."""

import numpy as np
import pytest

from repro.cuda import CudaModule
from repro.exec.threaded import ThreadedExecutor
from repro.io import CheckpointModule
from repro.platform import MachineSpec, discover, machine
from repro.runtime.api import async_future, finish, forasync
from repro.runtime.runtime import HiperRuntime


@pytest.fixture
def threaded_gpu_rt():
    ex = ThreadedExecutor(block_timeout=20.0)
    model = discover(machine("titan"), num_workers=4, with_interconnect=False)
    rt = HiperRuntime(model, ex).start([CudaModule()])
    yield rt
    rt.shutdown()
    ex.shutdown()


@pytest.fixture
def threaded_nvm_rt():
    ex = ThreadedExecutor(block_timeout=20.0)
    spec = MachineSpec(name="nvm-t", sockets=1, cores_per_socket=4,
                       nvm_bytes=1 << 30)
    model = discover(spec, num_workers=4, with_interconnect=False)
    rt = HiperRuntime(model, ex).start([CheckpointModule()])
    yield rt
    rt.shutdown()
    ex.shutdown()


class TestCudaOnThreads:
    def test_copy_kernel_copy(self, threaded_gpu_rt):
        rt = threaded_gpu_rt
        cu = rt.module("cuda")

        def main():
            h = np.arange(256, dtype=np.float64)
            d = cu.malloc(256)
            out = np.zeros(256)
            cu.memcpy(d, h)  # blocking over real wall time
            cu.kernel_async(lambda: np.multiply(d.data, 3.0, out=d.data),
                            flops=256).wait()
            cu.memcpy(out, d)
            return bool(np.allclose(out, h * 3))

        assert rt.run(main) is True

    def test_async_pipeline_with_host_tasks(self, threaded_gpu_rt):
        rt = threaded_gpu_rt
        cu = rt.module("cuda")

        def main():
            d = cu.malloc(64)
            k = cu.kernel_async(lambda: d.data.__setitem__(slice(None), 2.0),
                                flops=64)
            hostwork = async_future(lambda: sum(range(1000)))
            out = np.zeros(64)
            copy = cu.memcpy_async(out, d)  # same stream: after the kernel
            assert hostwork.get() == 499500
            copy.wait()
            k.wait()
            return float(out.sum())

        assert rt.run(main) == 128.0

    def test_stream_ordering_on_threads(self, threaded_gpu_rt):
        rt = threaded_gpu_rt
        cu = rt.module("cuda")

        def main():
            d = cu.malloc(8)
            for i in range(5):
                cu.kernel_async(
                    lambda i=i: d.data.__setitem__(0, float(i)), flops=1,
                    stream=3)
            out = np.zeros(8)
            cu.memcpy(out, d, stream=3)
            return out[0]

        assert rt.run(main) == 4.0


class TestCheckpointOnThreads:
    def test_round_trip(self, threaded_nvm_rt):
        rt = threaded_nvm_rt
        ck = rt.module("checkpoint")

        def main():
            state = {"w": np.linspace(0, 1, 100)}
            ck.checkpoint_async("snap", state).wait()
            state["w"][:] = 0
            back = ck.restore_async("snap").wait()
            return float(back["w"][-1])

        assert rt.run(main) == 1.0

    def test_overlap_with_real_work(self, threaded_nvm_rt):
        rt = threaded_nvm_rt
        ck = rt.module("checkpoint")

        def main():
            f = ck.checkpoint_async("big", {"a": np.zeros(1 << 18)})
            acc = []
            finish(lambda: forasync(
                64, lambda i: acc.append(i * i), chunks=16))
            f.wait()
            return len(acc)

        assert rt.run(main) == 64
