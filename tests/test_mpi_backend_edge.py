"""MPI backend edge semantics: unexpected-message queue, truncation,
wildcard/posted ordering, request misuse, and collective tag isolation."""

import numpy as np
import pytest

from repro.exec.sim import SimExecutor
from repro.mpi.backend import ANY_SOURCE, ANY_TAG, MpiBackend, MpiRequest
from repro.net.costmodel import NetworkModel
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.util.errors import MpiError


def make_world(n=2):
    ex = SimExecutor()
    fab = SimFabric(ex, n, NetworkModel())
    muxes = [FabricMux(fab, r) for r in range(n)]
    backends = [MpiBackend(m, r) for r, m in enumerate(muxes)]
    return ex, backends


class TestUnexpectedQueue:
    def test_early_send_matched_by_late_recv(self):
        ex, (a, b) = make_world()
        a.isend("early", 1, tag=3)
        ex.drain()  # delivered before any recv posted -> unexpected queue
        assert b.unexpected_count == 1
        req = b.irecv(src=0, tag=3)
        assert req.test()
        assert req.value[0] == "early"
        assert b.unexpected_count == 0

    def test_unexpected_matched_in_arrival_order(self):
        ex, (a, b) = make_world()
        for i in range(4):
            a.isend(i, 1, tag=9)
        ex.drain()
        got = [b.irecv(tag=9).value[0] for _ in range(4)]
        assert got == [0, 1, 2, 3]

    def test_posted_recvs_matched_in_post_order(self):
        ex, (a, b) = make_world()
        r1 = b.irecv(src=ANY_SOURCE, tag=ANY_TAG)
        r2 = b.irecv(src=ANY_SOURCE, tag=ANY_TAG)
        a.isend("first", 1, tag=1)
        a.isend("second", 1, tag=2)
        ex.drain()
        assert r1.value[0] == "first" and r2.value[0] == "second"

    def test_selective_recv_skips_nonmatching_unexpected(self):
        ex, (a, b) = make_world()
        a.isend("tagA", 1, tag=10)
        a.isend("tagB", 1, tag=20)
        ex.drain()
        req = b.irecv(tag=20)
        assert req.value[0] == "tagB"
        assert b.unexpected_count == 1  # tagA still waiting


class TestBuffersAndErrors:
    def test_truncation_detected(self):
        ex, (a, b) = make_world()
        buf = np.zeros(2, dtype=np.int64)
        b.irecv(src=0, tag=0, buffer=buf)
        a.isend(np.arange(10, dtype=np.int64), 1, tag=0)
        with pytest.raises(MpiError, match="truncation"):
            ex.drain()

    def test_buffer_type_mismatch(self):
        ex, (a, b) = make_world()
        b.irecv(src=0, tag=0, buffer=np.zeros(4))
        a.isend("not an array", 1, tag=0)
        with pytest.raises(MpiError, match="carries"):
            ex.drain()

    def test_request_value_before_completion(self):
        req = MpiRequest("irecv")
        with pytest.raises(MpiError, match="before completion"):
            _ = req.value

    def test_double_completion_rejected(self):
        req = MpiRequest("isend")
        req._complete(None, 0.0)
        with pytest.raises(MpiError, match="twice"):
            req._complete(None, 0.0)

    def test_internal_future_after_completion(self):
        req = MpiRequest("isend")
        req._complete("val", 1.0)
        assert req.internal_future().value() == "val"

    def test_bad_peer_and_tag(self):
        _, (a, _b) = make_world()
        with pytest.raises(MpiError, match="out of range"):
            a.isend(1, 99)
        with pytest.raises(MpiError, match="negative user tag"):
            a.isend(1, 1, tag=-1)


class TestCollectiveTagSpace:
    def test_internal_tags_do_not_match_user_wildcards(self):
        """A posted wildcard recv must not swallow internal collective
        traffic... by convention: internal tags are >= 1<<28 and wildcard
        CAN match them — so the backends allocate them identically on every
        rank and collectives never interleave with user wildcards in the
        supported usage (one collective at a time per communicator). This
        test pins the allocation behavior."""
        _, (a, b) = make_world()
        t1, t2 = a.next_collective_tag(), a.next_collective_tag()
        assert t2 == t1 + 1
        assert t1 >= (1 << 28)
        # both ranks allocate the same sequence
        assert b.next_collective_tag() == t1

    def test_comm_field_isolates(self):
        ex, (a, b) = make_world()
        r_comm1 = b.irecv(src=0, tag=5, comm=1)
        a.isend("comm0", 1, tag=5, comm=0)
        ex.drain()
        assert not r_comm1.test()
        assert b.unexpected_count == 1
        r_comm0 = b.irecv(src=0, tag=5, comm=0)
        assert r_comm0.test()


class TestSelfMessaging:
    def test_send_to_self(self):
        ex, (a, _b) = make_world()
        req = a.irecv(src=0, tag=7)
        a.isend({"self": True}, 0, tag=7)
        ex.drain()
        assert req.value[0] == {"self": True}

    def test_payload_nbytes_estimates(self):
        from repro.mpi.backend import _payload_nbytes

        assert _payload_nbytes(np.zeros(10, np.int64)) == 80
        assert _payload_nbytes(b"abcd") == 4
        assert _payload_nbytes(None) == 0
        assert _payload_nbytes({"any": "object"}) == 64

    def test_snapshot_semantics(self):
        ex, (a, b) = make_world()
        arr = np.ones(3)
        snap = a._snapshot(arr)
        arr[:] = 0
        assert np.all(snap == 1)
        ba = bytearray(b"xy")
        snap2 = a._snapshot(ba)
        ba[0] = 0
        assert snap2 == b"xy"
