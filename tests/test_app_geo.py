"""GEO stencil application: kernel math, workload determinism, and all three
variants validated against the serial reference."""

import numpy as np
import pytest

from repro.apps.geo import (
    GeoConfig,
    check_result,
    geo_main,
    initial_slab,
    reference_solution,
    stencil_planes,
)
from repro.apps.geo.common import C0, C1, plane_compute_seconds
from repro.distrib import ClusterConfig, spmd_run
from repro.cuda import cuda_factory
from repro.mpi import mpi_factory
from repro.platform import machine
from repro.util.errors import ConfigError


def run_geo(variant, cfg, nranks=2, workers=4):
    cluster = ClusterConfig(nodes=nranks, ranks_per_node=1,
                            workers_per_rank=workers,
                            machine=machine("titan"))
    return spmd_run(geo_main(variant, cfg), cluster,
                    module_factories=[mpi_factory(), cuda_factory()])


class TestKernel:
    def test_stencil_is_convex_average(self):
        assert C0 + 6 * C1 == pytest.approx(1.0)

    def test_single_cell_update(self):
        src = np.zeros((3, 3, 3))
        src[1, 1, 1] = 1.0
        dst = np.zeros_like(src)
        stencil_planes(src, dst, 1, 2)
        assert dst[1, 1, 1] == pytest.approx(C0)

    def test_neighbor_contributions(self):
        src = np.zeros((3, 3, 3))
        src[0, 1, 1] = 1.0  # z-below neighbor
        src[2, 1, 1] = 2.0  # z-above
        dst = np.zeros_like(src)
        stencil_planes(src, dst, 1, 2)
        assert dst[1, 1, 1] == pytest.approx(3.0 * C1)

    def test_dirichlet_edges_do_not_wrap(self):
        src = np.ones((3, 4, 4))
        dst = np.zeros_like(src)
        stencil_planes(src, dst, 1, 2)
        # corner cell has 2 zero neighbors (one x face, one y face)
        assert dst[1, 0, 0] == pytest.approx(C0 + 4 * C1)
        # interior x/y cell has all 6 neighbors
        assert dst[1, 1, 1] == pytest.approx(C0 + 6 * C1)

    def test_conservation_under_interior_average(self):
        # with all-ones field and full neighborhood, value is preserved
        src = np.ones((5, 6, 6))
        dst = np.zeros_like(src)
        stencil_planes(src, dst, 2, 3)
        assert dst[2, 2, 2] == pytest.approx(1.0)


class TestWorkload:
    def test_initial_slab_deterministic_per_rank(self):
        cfg = GeoConfig(nx=4, ny=4, nz=4)
        a = initial_slab(cfg, 1, 4)
        b = initial_slab(cfg, 1, 4)
        c = initial_slab(cfg, 2, 4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_halo_planes_zero_initial(self):
        cfg = GeoConfig(nx=4, ny=4, nz=4)
        s = initial_slab(cfg, 0, 2)
        assert np.all(s[0] == 0) and np.all(s[-1] == 0)

    def test_reference_matches_per_rank_decomposition(self):
        cfg = GeoConfig(nx=5, ny=4, nz=4, timesteps=3)
        ref2 = reference_solution(cfg, 2)
        assert ref2.shape == (8, 5, 4)

    def test_cost_helper_scales(self):
        cfg = GeoConfig(nx=8, ny=8, nz=8)
        assert plane_compute_seconds(cfg, 2, 1e9) == pytest.approx(
            2 * 64 * 8.0 / 1e9)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GeoConfig(nx=2, ny=8, nz=8)
        with pytest.raises(ConfigError):
            GeoConfig(timesteps=0)

    def test_unknown_variant(self):
        with pytest.raises(ConfigError, match="unknown GEO variant"):
            geo_main("openacc", GeoConfig())


class TestVariantsCorrectness:
    @pytest.mark.parametrize("variant", ["mpi_omp", "mpi_cuda", "hiper"])
    def test_matches_serial_reference(self, variant):
        cfg = GeoConfig(nx=8, ny=6, nz=6, timesteps=4)
        res = run_geo(variant, cfg, nranks=3)
        check_result(cfg, res.results)

    @pytest.mark.parametrize("variant", ["mpi_omp", "mpi_cuda", "hiper"])
    def test_single_rank(self, variant):
        cfg = GeoConfig(nx=6, ny=6, nz=6, timesteps=3)
        res = run_geo(variant, cfg, nranks=1)
        check_result(cfg, res.results)

    def test_many_ranks_thin_slabs(self):
        cfg = GeoConfig(nx=6, ny=6, nz=4, timesteps=3)
        res = run_geo("mpi_omp", cfg, nranks=6, workers=2)
        check_result(cfg, res.results)

    def test_hiper_rejects_too_thin_slab(self):
        cfg = GeoConfig(nx=6, ny=6, nz=3, timesteps=1)
        with pytest.raises(ConfigError, match="nz >= 4"):
            run_geo("hiper", cfg, nranks=2)

    def test_variants_agree_bitwise(self):
        cfg = GeoConfig(nx=6, ny=6, nz=8, timesteps=3)
        outs = {}
        for v in ("mpi_omp", "mpi_cuda", "hiper"):
            res = run_geo(v, cfg, nranks=2)
            outs[v] = np.concatenate(res.results, axis=0)
        assert np.array_equal(outs["mpi_omp"], outs["mpi_cuda"])
        assert np.array_equal(outs["mpi_omp"], outs["hiper"])


class TestVariantsTiming:
    def test_hiper_not_slower_than_blocking_cuda_baseline(self):
        """Fig. 6 shape: the future-based composition beats the version with
        blocking cudaMemcpy in the critical path."""
        cfg = GeoConfig(nx=16, ny=16, nz=16, timesteps=4)
        t_cuda = run_geo("mpi_cuda", cfg, nranks=2).makespan
        t_hiper = run_geo("hiper", cfg, nranks=2).makespan
        assert t_hiper < t_cuda

    def test_weak_scaling_flatish(self):
        """Weak scaling: makespan grows only mildly with rank count."""
        cfg = GeoConfig(nx=8, ny=8, nz=8, timesteps=3)
        t2 = run_geo("mpi_omp", cfg, nranks=2).makespan
        t6 = run_geo("mpi_omp", cfg, nranks=6).makespan
        assert t6 < t2 * 2.0
