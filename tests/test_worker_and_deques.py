"""Worker search policy and deque-table internals."""

import pytest

from repro.exec.sim import SimExecutor
from repro.platform import PlaceType, discover, machine
from repro.runtime.api import async_, async_at, charge, finish
from repro.runtime.deques import DequeTable, PlaceDeques, WorkerDeque
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import find_task, has_visible_work
from repro.util.errors import ConfigError


def make_rt(workers=4, detail="flat"):
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=workers,
                     detail=detail)
    return HiperRuntime(model, ex, seed=11).start()


def mk_task(rt, wid=0, name="t"):
    from repro.runtime.finish import FinishScope
    scope = FinishScope(name="test")
    return Task(lambda: None, name=name, place=rt.sysmem, created_by=wid,
                scope=scope)


class TestFindTask:
    def test_pop_prefers_own_newest(self):
        rt = make_rt()
        t1, t2 = mk_task(rt, 0, "old"), mk_task(rt, 0, "new")
        rt.deques.push(t1)
        rt.deques.push(t2)
        assert find_task(rt.workers[0]).name == "new"   # LIFO
        assert find_task(rt.workers[0]).name == "old"

    def test_steal_takes_oldest_of_victim(self):
        rt = make_rt()
        t1, t2 = mk_task(rt, 0, "old"), mk_task(rt, 0, "new")
        rt.deques.push(t1)
        rt.deques.push(t2)
        assert find_task(rt.workers[1]).name == "old"   # FIFO steal

    def test_single_worker_never_steals(self):
        rt = make_rt(workers=1)
        assert find_task(rt.workers[0]) is None
        assert rt.stats.counter("core", "steal") == 0

    def test_pop_beats_steal(self):
        rt = make_rt()
        mine = mk_task(rt, 1, "mine")
        theirs = mk_task(rt, 0, "theirs")
        rt.deques.push(theirs)
        rt.deques.push(mine)
        assert find_task(rt.workers[1]).name == "mine"

    def test_victim_order_deterministic_per_seed(self):
        a = make_rt()
        b = make_rt()
        order_a = [list(a.workers[2].victim_order()) for _ in range(3)]
        order_b = [list(b.workers[2].victim_order()) for _ in range(3)]
        assert order_a == order_b

    def test_has_visible_work(self):
        rt = make_rt()
        assert not has_visible_work(rt.workers[0])
        rt.deques.push(mk_task(rt, 0))
        assert has_visible_work(rt.workers[0])      # own pop path
        assert has_visible_work(rt.workers[3])      # steal path


class TestDequeTable:
    def test_push_requires_place(self):
        rt = make_rt()
        task = mk_task(rt)
        task.place = None
        with pytest.raises(ConfigError, match="no target place"):
            rt.deques.push(task)

    def test_total_ready_and_snapshot(self):
        rt = make_rt()
        for _ in range(3):
            rt.deques.push(mk_task(rt, 0))
        rt.deques.push(mk_task(rt, 2))
        assert rt.deques.total_ready() == 4
        snap = rt.deques.snapshot()
        assert snap == {"sysmem": 4}

    def test_peek_names(self):
        dq = WorkerDeque()
        rt = make_rt()
        for n in ("a", "b"):
            dq.push(mk_task(rt, 0, n))
        assert dq.peek_names() == ["a", "b"]

    def test_place_deques_validation(self):
        rt = make_rt()
        with pytest.raises(ConfigError):
            PlaceDeques(rt.sysmem, 0)


class TestPlacementEndToEnd:
    def test_gpu_targeted_task_runs_despite_no_pop_owner(self):
        """A task pushed at a GPU place by worker 3 must still run: worker 3
        pops it (GPU is on its pop path under the default policy)."""
        rt = make_rt()
        gpu = rt.model.first_of_type(PlaceType.GPU_MEM)
        ran = []

        def main():
            finish(lambda: async_at(lambda: ran.append(1), gpu))

        rt.run(main)
        assert ran == [1]

    def test_full_detail_work_spawned_at_l1_is_stolen(self):
        """Regression for the unstealable-private-place bug: work spawned to
        one worker's L1 must be reachable by thieves (Fig. 3 steal paths)."""
        rt = make_rt(workers=4, detail="full")
        done = []

        def main():
            # main runs on one worker; spawn everything to its own L1 (the
            # default place) with real cost — other workers must steal.
            finish(lambda: [async_(lambda i=i: (charge(1e-3),
                                                done.append(i))[1], cost=0.0)
                            for i in range(16)])

        rt.run(main)
        assert sorted(done) == list(range(16))
        busy = [w for w in rt.workers if w.tasks_run > 0]
        assert len(busy) >= 3  # parallelized, not serialized on the spawner

    def test_numa_detail_cross_socket_stealing(self):
        """Regression for the cross-socket variant of the same bug."""
        ex = SimExecutor()
        model = discover(machine("edison"), num_workers=8, detail="numa")
        rt = HiperRuntime(model, ex, seed=5).start()

        def main():
            finish(lambda: [async_(lambda: charge(1e-3)) for _ in range(32)])

        rt.run(main)
        # 32 x 1ms over 8 workers across 2 sockets: ideal 4ms; without
        # cross-socket steal paths this was ~2x worse
        assert ex.makespan() < 4e-3 * 1.4
