"""Multiprocess SPMD backend tests (ISSUE 6 tentpole).

Covers the parent-side lifecycle discipline (no orphaned children, no
leaked ``/dev/shm`` segments, stragglers terminated on timeout), the
put/get/quiet round-trip over the real socket fabric + shared-memory heap,
the pluggable launcher registry (including the batch-system stubs), and the
sim ↔ procs digest differential on CI-sized workloads.
"""

import glob
import multiprocessing
import os
import tempfile
import time

import numpy as np
import pytest

from repro.exec.procs import (
    ProcessExecutor,
    ProcsJob,
    procs_run,
    resolve_dotted,
)
from repro.launch import (
    FluxLauncher,
    Launcher,
    LauncherUnavailable,
    PbsLauncher,
    available_launchers,
    get_launcher,
    register_launcher,
)
from repro.shmem.shared import leaked_segments
from repro.util.errors import ConfigError, RuntimeStateError


# ----------------------------------------------------------------------
# rank mains (module-level so the fork launcher can ship them directly)
# ----------------------------------------------------------------------
def roundtrip_factory():
    """Each rank puts its id into its right neighbor's window."""

    def main(ctx):
        sh = ctx.shmem
        me, n = ctx.rank, ctx.nranks
        buf = sh.malloc((4,), dtype=np.int64, fill=-1)
        yield sh.barrier_all_async()
        peer = (me + 1) % n
        yield sh.put_async(buf, np.full(4, 100 + me, dtype=np.int64), peer)
        yield sh.quiet_async()
        yield sh.barrier_all_async()
        got = np.asarray((yield sh.get_async(buf, me)))
        return (me, int(got[0]), [int(x) for x in got])

    return main


def failing_factory():
    """Rank 1 dies before the barrier; rank 0 stalls into its watchdog."""

    def main(ctx):
        sh = ctx.shmem
        if ctx.rank == 1:
            raise ValueError("injected rank failure")
        yield sh.barrier_all_async()
        return ctx.rank

    return main


def hanging_factory():
    """Every rank wedges hard (the parent timeout must break the run)."""

    def main(ctx):
        time.sleep(300)
        yield ctx.shmem.barrier_all_async()

    return main


def _new_children(before):
    return [p for p in multiprocessing.active_children() if p not in before]


# ----------------------------------------------------------------------
# round-trip + lifecycle
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_put_get_quiet_two_ranks(self):
        res = procs_run(roundtrip_factory, nranks=2, timeout=60.0)
        assert sorted(res.results) == [(0, 101, [101] * 4),
                                       (1, 100, [100] * 4)]
        assert res.nranks == 2
        assert res.launcher == "local"
        assert res.wall_time > 0

    def test_counters_merged_across_ranks(self):
        res = procs_run(roundtrip_factory, nranks=2, timeout=60.0)
        assert any(key.startswith("shmem.") for key in res.counters), \
            res.counters

    def test_no_orphans_no_leaked_segments_no_rundir(self):
        before = multiprocessing.active_children()
        res = procs_run(roundtrip_factory, nranks=2, timeout=60.0)
        assert _new_children(before) == []
        assert leaked_segments(res.run_id) == []
        assert glob.glob(os.path.join(
            tempfile.gettempdir(), f"repro-procs-{res.run_id}-*")) == []


class TestFailurePaths:
    def test_rank_failure_surfaces_root_cause(self):
        # Rank 0 stalls at the barrier rank 1 never reaches; the report must
        # lead with the injected error, not the stranded peer's DeadlockError.
        with pytest.raises(ConfigError, match="injected rank failure"):
            procs_run(failing_factory, nranks=2, timeout=60.0,
                      block_timeout=2.0)

    def test_hang_hits_parent_timeout_and_terminates_stragglers(self):
        before = multiprocessing.active_children()
        with pytest.raises(RuntimeStateError, match="timed out"):
            procs_run(hanging_factory, nranks=2, timeout=2.0,
                      block_timeout=60.0)
        deadline = time.monotonic() + 10.0
        while _new_children(before) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert _new_children(before) == []
        assert leaked_segments() == []

    def test_executor_refuses_reuse_after_shutdown(self):
        ex = ProcessExecutor(2)
        ex.shutdown()
        ex.shutdown()  # idempotent
        with pytest.raises(RuntimeStateError, match="after shutdown"):
            ex.run(roundtrip_factory)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ProcessExecutor(0)
        with pytest.raises(ConfigError):
            ProcessExecutor(2, timeout=-1.0)


# ----------------------------------------------------------------------
# factories + launcher registry
# ----------------------------------------------------------------------
class TestFactoryResolution:
    def test_resolve_dotted(self):
        from repro.shmem import shmem_factory
        assert resolve_dotted("repro.shmem:shmem_factory") is shmem_factory

    def test_resolve_dotted_rejects_malformed(self):
        with pytest.raises(ConfigError, match="pkg.mod:attr"):
            resolve_dotted("repro.shmem.shmem_factory")

    def test_resolve_dotted_rejects_missing_attr(self):
        with pytest.raises(ConfigError, match="no attribute"):
            resolve_dotted("repro.shmem:nope")

    def test_resolve_modules_by_name_and_path(self):
        job = ProcsJob(run_id="x", rundir="/tmp", nranks=1,
                       factory=roundtrip_factory,
                       modules=(("shmem", {}),
                                ("repro.mpi:mpi_factory", {})))
        mods = job.resolve_modules()
        assert len(mods) == 2 and all(callable(m) for m in mods)


class TestLauncherRegistry:
    def test_builtins_available(self):
        names = available_launchers()
        assert "local" in names and "subprocess" in names

    def test_unknown_launcher_lists_known(self):
        with pytest.raises(ConfigError, match="known launchers"):
            get_launcher("slurm-step")

    def test_register_rejects_non_launcher(self):
        with pytest.raises(ConfigError):
            register_launcher(object)

    def test_register_requires_name(self):
        class Nameless(Launcher):
            def launch(self, job, rank):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigError, match="must set a name"):
            register_launcher(Nameless)

    @pytest.mark.parametrize("cls,tool", [(FluxLauncher, "flux"),
                                          (PbsLauncher, "qsub")])
    def test_stub_commands_target_the_worker_entry(self, cls, tool):
        job = ProcsJob(run_id="x", rundir="/tmp/r", nranks=2,
                       factory="repro.shmem:shmem_factory")
        cmd = cls().command_for(job, 1)
        assert tool in cmd[0]
        assert "procs-worker" in cmd and "--rank" in cmd

    def test_stub_launch_raises_with_command(self):
        import shutil as _sh
        if _sh.which("flux"):  # pragma: no cover - site with flux installed
            pytest.skip("flux actually installed here")
        job = ProcsJob(run_id="x", rundir="/tmp/r", nranks=1,
                       factory="repro.shmem:shmem_factory")
        with pytest.raises(LauncherUnavailable, match="would run"):
            FluxLauncher().launch(job, 0)
        with pytest.raises(LauncherUnavailable):
            get_launcher("flux")

    def test_pbs_alias(self):
        assert PbsLauncher.matches("qsub")


class TestSubprocessLauncher:
    def test_roundtrip_over_command_line_children(self):
        # Exercises job pickling + the `python -m repro procs-worker` entry.
        from repro.verify.spmd_workloads import run_procs_workload
        digest, res = run_procs_workload("uts", nranks=2,
                                         launcher="subprocess", timeout=90.0)
        assert digest == ("uts", 355)
        assert res.launcher == "subprocess"
        assert leaked_segments(res.run_id) == []


# ----------------------------------------------------------------------
# the differential: procs must match the single-runtime engines
# ----------------------------------------------------------------------
class TestProcsDifferential:
    @pytest.mark.parametrize("workload", ["isx", "uts"])
    def test_digest_matches_sim(self, workload):
        from repro.verify import differential
        rep = differential(workload, engines=("sim", "procs"))
        assert rep.ok, rep.describe()
        assert [r.engine for r in rep.runs] == ["sim", "procs"]

    def test_graph500_digest_matches_sim(self):
        from repro.verify import differential
        rep = differential("graph500", engines=("sim", "procs"))
        assert rep.ok, rep.describe()
