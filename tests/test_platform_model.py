"""Platform model graph: places, edges, JSON round trips, validation."""

import json

import pytest

from repro.platform.model import PlatformModel
from repro.platform.place import MEMORY_PLACE_TYPES, PlaceType
from repro.util.errors import PlatformError


def build_small():
    m = PlatformModel("small")
    m.num_workers = 2
    mem = m.add_place("mem", PlaceType.SYSTEM_MEM)
    gpu = m.add_place("gpu0", PlaceType.GPU_MEM, {"device": 0})
    nic = m.add_place("nic", PlaceType.INTERCONNECT)
    m.add_edge(mem, gpu)
    m.add_edge(mem, nic)
    return m


class TestPlaces:
    def test_place_ids_dense(self):
        m = build_small()
        assert [p.place_id for p in m] == [0, 1, 2]

    def test_place_lookup_by_name(self):
        m = build_small()
        assert m.place("gpu0").kind is PlaceType.GPU_MEM

    def test_unknown_name_raises(self):
        with pytest.raises(PlatformError, match="no place named"):
            build_small().place("nope")

    def test_place_by_id_bad(self):
        with pytest.raises(PlatformError):
            build_small().place_by_id(99)

    def test_duplicate_name_rejected(self):
        m = build_small()
        with pytest.raises(PlatformError, match="duplicate"):
            m.add_place("mem", PlaceType.NVM)

    def test_empty_name_rejected(self):
        m = PlatformModel()
        with pytest.raises(PlatformError):
            m.add_place("", PlaceType.SYSTEM_MEM)

    def test_is_memory_classification(self):
        m = build_small()
        assert m.place("mem").is_memory
        assert m.place("gpu0").is_memory
        assert not m.place("nic").is_memory

    def test_memory_types_cover_storage(self):
        assert PlaceType.NVM in MEMORY_PLACE_TYPES
        assert PlaceType.DISK in MEMORY_PLACE_TYPES
        assert PlaceType.L1_CACHE not in MEMORY_PLACE_TYPES

    def test_place_type_from_string_error_lists_valid(self):
        with pytest.raises(PlatformError, match="system_mem"):
            PlaceType.from_string("bogus")


class TestEdgesAndPaths:
    def test_neighbors_sorted(self):
        m = build_small()
        names = [p.name for p in m.place("mem").neighbors()]
        assert names == ["gpu0", "nic"]

    def test_self_edge_rejected(self):
        m = build_small()
        with pytest.raises(PlatformError, match="self-edge"):
            m.add_edge(m.place("mem"), m.place("mem"))

    def test_cross_model_edge_rejected(self):
        a, b = build_small(), build_small()
        with pytest.raises(PlatformError):
            a.add_edge(a.place("mem"), b.place("mem"))

    def test_shortest_path_trivial(self):
        m = build_small()
        assert m.shortest_path(m.place("mem"), m.place("mem")) == [m.place("mem")]

    def test_shortest_path_two_hops(self):
        m = build_small()
        path = m.shortest_path(m.place("gpu0"), m.place("nic"))
        assert [p.name for p in path] == ["gpu0", "mem", "nic"]

    def test_disconnected_raises(self):
        m = PlatformModel()
        a = m.add_place("a", PlaceType.SYSTEM_MEM)
        b = m.add_place("b", PlaceType.NVM)
        with pytest.raises(PlatformError, match="not connected"):
            m.shortest_path(a, b)

    def test_has_edge(self):
        m = build_small()
        assert m.has_edge(m.place("mem"), m.place("gpu0"))
        assert not m.has_edge(m.place("gpu0"), m.place("nic"))


class TestValidation:
    def test_valid_model_passes(self):
        build_small().validate()

    def test_disconnected_model_fails(self):
        m = PlatformModel()
        m.add_place("a", PlaceType.SYSTEM_MEM)
        m.add_place("b", PlaceType.NVM)
        with pytest.raises(PlatformError, match="not connected"):
            m.validate()

    def test_empty_model_fails(self):
        with pytest.raises(PlatformError, match="no places"):
            PlatformModel().validate()

    def test_two_interconnects_fail(self):
        m = PlatformModel()
        mem = m.add_place("mem", PlaceType.SYSTEM_MEM)
        n1 = m.add_place("n1", PlaceType.INTERCONNECT)
        n2 = m.add_place("n2", PlaceType.INTERCONNECT)
        m.add_edge(mem, n1)
        m.add_edge(mem, n2)
        with pytest.raises(PlatformError, match="interconnect"):
            m.validate()

    def test_bad_worker_count(self):
        m = build_small()
        m.num_workers = 0
        with pytest.raises(PlatformError, match="num_workers"):
            m.validate()


class TestFreezeAndCopy:
    def test_freeze_blocks_mutation(self):
        m = build_small().freeze()
        with pytest.raises(PlatformError, match="frozen"):
            m.add_place("x", PlaceType.NVM)
        with pytest.raises(PlatformError, match="frozen"):
            m.add_edge(m.place("mem"), m.place("gpu0"))

    def test_copy_is_unfrozen_and_structurally_equal(self):
        m = build_small().freeze()
        c = m.copy()
        assert not c.frozen
        assert len(c) == len(m)
        assert c.num_workers == m.num_workers
        assert c.has_edge(c.place("mem"), c.place("gpu0"))
        c.add_place("extra", PlaceType.DISK)  # mutable

    def test_copy_does_not_share_properties(self):
        m = build_small()
        c = m.copy()
        c.place("gpu0").properties["device"] = 7
        assert m.place("gpu0").properties["device"] == 0


class TestJson:
    def test_round_trip(self):
        m = build_small()
        m2 = PlatformModel.from_json(m.to_json())
        assert len(m2) == len(m)
        assert m2.num_workers == m.num_workers
        assert m2.place("gpu0").properties["device"] == 0
        assert m2.has_edge(m2.place("mem"), m2.place("nic"))

    def test_round_trip_via_file(self, tmp_path):
        m = build_small()
        path = str(tmp_path / "platform.json")
        m.save(path)
        m2 = PlatformModel.load(path)
        assert m2.to_json_dict() == m.to_json_dict()

    def test_json_is_valid_and_stable(self):
        data = json.loads(build_small().to_json())
        assert {p["name"] for p in data["places"]} == {"mem", "gpu0", "nic"}
        assert sorted(data["edges"]) == data["edges"]

    def test_malformed_json_raises(self):
        with pytest.raises(PlatformError, match="invalid JSON"):
            PlatformModel.from_json("{nope")

    def test_missing_places_key_raises(self):
        with pytest.raises(PlatformError, match="malformed"):
            PlatformModel.from_json_dict({"name": "x"})

    def test_bad_place_type_raises(self):
        with pytest.raises(PlatformError):
            PlatformModel.from_json_dict(
                {"places": [{"name": "a", "type": "warp_core"}]}
            )


class TestNetworkxExport:
    def test_export_matches_graph(self):
        g = build_small().to_networkx()
        assert set(g.nodes) == {"mem", "gpu0", "nic"}
        assert g.number_of_edges() == 2
        assert g.nodes["gpu0"]["kind"] == "gpu_mem"
