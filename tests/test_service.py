"""The ``repro.service`` job gateway: units, edge cases, and the wire.

Layered like the package: cache / admission / spec units first (no
threads), then gateway edge cases driven directly (cancel queued vs.
running, backpressure, drain with in-flight jobs, reload), then the HTTP
server + client over a real Unix-domain socket, ending in the CI smoke
scenario (two tenants, a burst of jobs, clean remote drain).
"""

import threading
import time

import pytest

from repro.service import (FairShareAdmission, Job, JobGateway, JobSpec,
                           QueueFull, ResultCache, ServiceClient,
                           ServiceConfig, ServiceDraining, ServiceError,
                           ServiceServer)
from repro.service.pool import WarmRuntime, run_job_on
from repro.util.errors import ConfigError

#: A job slow enough (~0.5 s simulated UTS) to be observably RUNNING.
SLOW = {"root_children": 5000}
#: A quick job (~50 ms) for queue/drain scenarios.
QUICK = {"root_children": 500}


def _wait_state(job, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state.value == state:
            return True
        time.sleep(0.005)
    return False


# ---------------------------------------------------------------------------
# units: result cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self):
        c = ResultCache(capacity=4)
        assert c.get("k") == (False, None)
        c.put("k", [1, 2])
        assert c.get("k") == (True, [1, 2])
        assert (c.hits, c.misses) == (1, 1)

    def test_lru_eviction_and_hit_refresh(self):
        c = ResultCache(capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a")[0]          # refresh "a": now "b" is oldest
        c.put("c", 3)
        assert c.get("b") == (False, None)
        assert c.get("a") == (True, 1)
        assert c.evictions == 1

    def test_duplicate_put_keeps_original(self):
        c = ResultCache(capacity=4)
        c.put("k", "first")
        c.put("k", "second")
        assert c.get("k") == (True, "first")
        assert len(c) == 1

    def test_zero_capacity_disables(self):
        c = ResultCache(capacity=0)
        c.put("k", 1)
        assert c.get("k") == (False, None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ResultCache(capacity=-1)


# ---------------------------------------------------------------------------
# units: job spec / cache key discipline
# ---------------------------------------------------------------------------
class TestJobSpec:
    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            JobSpec.create("nope")
        with pytest.raises(ConfigError, match="unknown backend"):
            JobSpec.create("isx", backend="gpu")
        with pytest.raises(ConfigError, match="unknown engine"):
            JobSpec.create("isx", engine="slab")

    def test_bad_params_list_valid_fields(self):
        with pytest.raises(ConfigError, match="keys_per_pe"):
            JobSpec.create("isx", {"keys": 10})

    def test_seed_field_is_canonical(self):
        # A "seed" smuggled into params loses to the spec's seed field, so
        # the cache key cannot be split by where the seed was written.
        a = JobSpec.create("isx", {"keys_per_pe": 64, "seed": 5}, seed=7)
        b = JobSpec.create("isx", {"keys_per_pe": 64}, seed=7)
        assert a == b and a.cache_key() == b.cache_key()
        assert a.canonical()["seed"] == 7

    def test_key_ignores_param_order_not_values(self):
        a = JobSpec.create("uts", {"root_children": 9, "mean_children": 0.5})
        b = JobSpec.create("uts", {"mean_children": 0.5, "root_children": 9})
        c = JobSpec.create("uts", {"root_children": 10, "mean_children": 0.5})
        assert a.cache_key() == b.cache_key() != c.cache_key()

    def test_engine_in_key_only_for_sim(self):
        flat = JobSpec.create("isx", seed=1, engine="flat")
        objects = JobSpec.create("isx", seed=1, engine="objects")
        assert flat.cache_key() != objects.cache_key()
        t_flat = JobSpec.create("isx", seed=1, backend="threads",
                                engine="flat")
        t_obj = JobSpec.create("isx", seed=1, backend="threads",
                               engine="objects")
        assert t_flat.cache_key() == t_obj.cache_key()

    def test_ranks_in_key_only_for_procs(self):
        assert (JobSpec.create("isx", ranks=2).cache_key()
                == JobSpec.create("isx", ranks=8).cache_key())
        assert (JobSpec.create("isx", backend="procs", ranks=2).cache_key()
                != JobSpec.create("isx", backend="procs", ranks=8).cache_key())


# ---------------------------------------------------------------------------
# units: fair-share admission
# ---------------------------------------------------------------------------
def _job(tenant, backend="sim", **params):
    params.setdefault("keys_per_pe", 32)
    return Job(JobSpec.create("isx", params, backend=backend), tenant)


class TestFairShareAdmission:
    def test_queue_full_rejects_per_tenant(self):
        adm = FairShareAdmission(max_queue_per_tenant=2)
        adm.submit(_job("a"))
        adm.submit(_job("a"))
        with pytest.raises(QueueFull) as exc:
            adm.submit(_job("a"))
        assert exc.value.tenant == "a" and exc.value.depth == 2
        adm.submit(_job("b"))  # other tenants are unaffected

    def test_stride_order_respects_weights(self):
        adm = FairShareAdmission(weights={"b": 2.0})
        for _ in range(6):
            adm.submit(_job("a"))
            adm.submit(_job("b"))
        picks = [adm.next_job("sim", timeout=0).tenant for _ in range(6)]
        # Strides: a=1.0, b=0.5 -> b is served twice as often.
        assert picks == ["a", "b", "b", "a", "b", "b"]
        assert adm.to_dict()["b"]["dispatched"] == 4

    def test_idle_tenant_cannot_bank_credit(self):
        adm = FairShareAdmission()
        for _ in range(4):
            adm.submit(_job("a"))
        for _ in range(4):
            adm.next_job("sim", timeout=0)   # a's pass advances to 4.0
        adm.submit(_job("a"))
        adm.submit(_job("late"))             # clamped to a's pass floor
        assert adm.to_dict()["late"]["pass"] >= 4.0

    def test_backend_skip_preserves_fifo_per_backend(self):
        adm = FairShareAdmission()
        adm.submit(_job("a", backend="procs"))
        first_sim = _job("a")
        adm.submit(first_sim)
        adm.submit(_job("a"))
        assert adm.next_job("sim", timeout=0) is first_sim
        assert adm.pending() == 2
        assert adm.next_job("threads", timeout=0) is None

    def test_cancel_removes_queued_only(self):
        adm = FairShareAdmission()
        job = _job("a")
        adm.submit(job)
        assert adm.cancel(job) is True
        assert adm.cancel(job) is False
        assert adm.pending() == 0


# ---------------------------------------------------------------------------
# units: warm pool
# ---------------------------------------------------------------------------
class TestWarmPool:
    def test_procs_not_poolable(self):
        with pytest.raises(ConfigError, match="not warm-poolable"):
            WarmRuntime("procs")

    def test_engine_mismatch_runs_cold(self):
        entry = WarmRuntime("sim", engine="flat")
        try:
            match = JobSpec.create("isx", {"keys_per_pe": 32}, seed=1)
            other = JobSpec.create("isx", {"keys_per_pe": 32}, seed=1,
                                   engine="objects")
            r1, warm1 = run_job_on(entry, match)
            r2, warm2 = run_job_on(entry, other)
            assert warm1 and not warm2
            assert r1 == r2  # engine differential, via the pool
            assert entry.jobs_run == 1
        finally:
            entry.close()

    def test_closed_entry_runs_cold(self):
        entry = WarmRuntime("sim")
        entry.close()
        spec = JobSpec.create("isx", {"keys_per_pe": 32}, seed=2)
        _result, used_warm = run_job_on(entry, spec)
        assert not used_warm


# ---------------------------------------------------------------------------
# gateway edge cases (no wire)
# ---------------------------------------------------------------------------
@pytest.fixture
def gateway():
    gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1)).start()
    yield gw
    gw.close()


class TestGatewayDedupe:
    def test_resubmission_hits_cache_without_reexecution(self, gateway):
        first = gateway.submit("isx", {"keys_per_pe": 64}, seed=11)
        assert first.done_event.wait(30.0) and first.state.value == "done"

        second = gateway.submit("isx", {"keys_per_pe": 64}, seed=11)
        assert second.cache_hit and second.state.value == "done"
        assert second.result == first.result       # bit-identical
        assert second.job_id != first.job_id       # still its own job
        # No second execution: one exec timer sample, one cache hit.
        assert gateway.stats.timer("service", "exec").count == 1
        assert gateway.cache.hits == 1

    def test_distinct_seed_misses(self, gateway):
        a = gateway.submit("isx", {"keys_per_pe": 64}, seed=1)
        assert a.done_event.wait(30.0)
        b = gateway.submit("isx", {"keys_per_pe": 64}, seed=2)
        assert b.done_event.wait(30.0)
        assert not b.cache_hit and b.result != a.result


class TestGatewayCancel:
    def test_cancel_queued_never_runs(self):
        # Unstarted gateway: no pool workers, jobs stay queued.
        gw = JobGateway(ServiceConfig(backends=("sim",)))
        job = gw.submit("isx", {"keys_per_pe": 64}, seed=21)
        out = gw.cancel(job.job_id)
        assert out["outcome"] == "cancelled"
        assert job.state.value == "cancelled" and job.done_event.is_set()
        assert gw.stats.counter("service", "jobs_cancelled") == 1
        assert gw.stats.timer("service", "exec").count == 0

    def test_cancel_running_discards_result_but_caches(self, gateway):
        job = gateway.submit("uts", SLOW, seed=22)
        assert _wait_state(job, "running")
        out = gateway.cancel(job.job_id)
        assert out["outcome"] == "cancelling"
        assert job.done_event.wait(30.0)
        assert job.state.value == "cancelled"
        doc = gateway.result(job.job_id)
        assert "result" in doc and doc["result"] is None
        # The attempt's (deterministic) value still landed in the cache:
        # a resubmission is answered instantly.
        again = gateway.submit("uts", SLOW, seed=22)
        assert again.cache_hit and again.result is not None

    def test_cancel_terminal_is_noop(self, gateway):
        job = gateway.submit("isx", {"keys_per_pe": 64}, seed=23)
        assert job.done_event.wait(30.0)
        assert gateway.cancel(job.job_id)["outcome"] == "done"

    def test_unknown_job_id(self, gateway):
        with pytest.raises(ConfigError, match="unknown job id"):
            gateway.cancel("job-99999999")


class TestGatewayBackpressure:
    def test_full_tenant_queue_rejects(self):
        gw = JobGateway(ServiceConfig(backends=("sim",),
                                      max_queue_per_tenant=2))
        for seed in (1, 2):
            gw.submit("isx", {"keys_per_pe": 64}, seed=seed, tenant="noisy")
        with pytest.raises(QueueFull):
            gw.submit("isx", {"keys_per_pe": 64}, seed=3, tenant="noisy")
        # The rejection is per tenant, rolled back cleanly, and counted.
        gw.submit("isx", {"keys_per_pe": 64}, seed=3, tenant="polite")
        assert gw.stats.counter("tenant.noisy", "jobs_rejected") == 1
        assert gw.stats.counter("service", "jobs_submitted") == 4
        assert len([j for j in gw._jobs.values()]) == 3

    def test_rejected_job_not_queryable(self):
        gw = JobGateway(ServiceConfig(backends=("sim",),
                                      max_queue_per_tenant=1))
        gw.submit("isx", {"keys_per_pe": 64}, seed=1)
        with pytest.raises(QueueFull):
            gw.submit("isx", {"keys_per_pe": 64}, seed=2)
        assert gw.admission.depth("default") == 1


class TestGatewayLifecycle:
    def test_drain_completes_inflight_then_rejects(self):
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1)).start()
        jobs = [gw.submit("uts", QUICK, seed=s) for s in range(5)]
        assert gw.drain(timeout=60.0) is True
        assert all(j.state.value == "done" for j in jobs)
        with pytest.raises(ServiceDraining):
            gw.submit("isx", {"keys_per_pe": 64}, seed=9)
        # Completed jobs stay queryable after the drain.
        doc = gw.result(jobs[0].job_id)
        assert doc["state"] == "done" and doc["result"] is not None

    def test_drain_timeout_reports_false(self):
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1)).start()
        try:
            gw.submit("uts", SLOW, seed=31)
            assert gw.drain(timeout=0.05) is False
        finally:
            gw.close()

    def test_reload_bumps_generation_and_keeps_serving(self):
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1)).start()
        try:
            before = gw.submit("isx", {"keys_per_pe": 64}, seed=41)
            assert before.done_event.wait(30.0)
            assert gw.reload() == 1
            after = gw.submit("isx", {"keys_per_pe": 64}, seed=42)
            assert after.done_event.wait(30.0)
            assert after.state.value == "done"
            assert gw.pool_generation == 1
        finally:
            gw.close()

    def test_disabled_backend_rejected_at_submit(self, gateway):
        with pytest.raises(ConfigError, match="not enabled"):
            gateway.submit("isx", {}, backend="threads")

    def test_stats_dict_shape(self, gateway):
        job = gateway.submit("isx", {"keys_per_pe": 64}, seed=51)
        assert job.done_event.wait(30.0)
        doc = gateway.stats_dict()
        assert doc["jobs"] == {"done": 1} and doc["unfinished"] == 0
        assert doc["tenants"]["default"]["dispatched"] == 1
        assert doc["cache"]["entries"] == 1
        assert doc["telemetry"]["counters"]["tenant.default.jobs_completed"] == 1


class TestGatewayRetries:
    def test_hiper_error_retries_then_fails(self, monkeypatch):
        from repro.service import gateway as gw_mod
        from repro.util.errors import HiperError

        calls = []

        def always_fails(entry, spec, name=""):
            calls.append(name)
            raise HiperError("injected transient fault")

        monkeypatch.setattr(gw_mod, "run_job_on", always_fails)
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1,
                                      warm=False)).start()
        try:
            job = gw.submit("isx", {"keys_per_pe": 64}, seed=61)
            assert job.done_event.wait(30.0)
            assert job.state.value == "failed"
            assert job.attempts == 3 and len(calls) == 3
            assert "injected transient fault" in job.error
            assert gw.stats.counter("service", "retries") == 2
        finally:
            gw.close()

    def test_programming_error_fails_fast(self, monkeypatch):
        from repro.service import gateway as gw_mod

        def explodes(entry, spec, name=""):
            raise AssertionError("oracle mismatch")

        monkeypatch.setattr(gw_mod, "run_job_on", explodes)
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1,
                                      warm=False)).start()
        try:
            job = gw.submit("isx", {"keys_per_pe": 64}, seed=62)
            assert job.done_event.wait(30.0)
            assert job.state.value == "failed" and job.attempts == 1
            assert gw.stats.counter("service", "retries") == 0
        finally:
            gw.close()


# ---------------------------------------------------------------------------
# the wire: server + client over a Unix-domain socket
# ---------------------------------------------------------------------------
@pytest.fixture
def served(tmp_path):
    uds = str(tmp_path / "svc.sock")
    gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=1,
                                  max_queue_per_tenant=4))
    server = ServiceServer(gw, uds=uds).start()
    client = ServiceClient(uds=uds)
    yield client, gw, uds
    client.close()
    server.stop()


class TestWire:
    def test_submit_wait_roundtrip(self, served):
        client, _gw, _uds = served
        job = client.submit("isx", {"keys_per_pe": 64}, seed=71)
        assert job["state"] in ("queued", "running", "done")
        doc = client.wait(job["job_id"], timeout=30.0)
        assert doc["state"] == "done" and doc["result"] is not None

    def test_dedupe_is_bit_identical_over_the_wire(self, served):
        client, _gw, _uds = served
        a = client.wait(client.submit("uts", QUICK, seed=72)["job_id"],
                        timeout=30.0)
        b = client.submit("uts", QUICK, seed=72)
        assert b["cache_hit"] and b["state"] == "done"
        assert b["result"] == a["result"]

    def test_unknown_job_is_404(self, served):
        client, _gw, _uds = served
        with pytest.raises(ServiceError) as exc:
            client.status("job-00000000")
        assert exc.value.status == 404

    def test_bad_spec_is_400(self, served):
        client, _gw, _uds = served
        with pytest.raises(ServiceError) as exc:
            client.submit("nope")
        assert exc.value.status == 400 and "unknown app" in str(exc.value)

    def test_queue_full_is_429_and_backoff_absorbs_it(self, served):
        client, _gw, _uds = served
        slow = client.submit("uts", SLOW, seed=73)
        # Wait until the slow job occupies the single pool slot, then fill
        # the tenant queue behind it.
        deadline = time.monotonic() + 10.0
        while client.status(slow["job_id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        for seed in range(4):
            client.submit("isx", {"keys_per_pe": 64}, seed=seed)
        impatient = ServiceClient(uds=_uds, submit_attempts=1)
        try:
            with pytest.raises(ServiceError) as exc:
                impatient.submit("isx", {"keys_per_pe": 64}, seed=99)
            assert exc.value.status == 429
        finally:
            impatient.close()
        # The default client's backoff outlasts the slow job: accepted.
        doc = client.submit("isx", {"keys_per_pe": 64}, seed=99)
        assert client.wait(doc["job_id"], timeout=60.0)["state"] == "done"

    def test_cancel_over_wire(self, served):
        client, _gw, _uds = served
        running = client.submit("uts", SLOW, seed=74)
        queued = client.submit("uts", SLOW, seed=75)
        assert client.cancel(queued["job_id"]) in ("cancelled", "cancelling")
        outcome = client.cancel(running["job_id"])
        assert outcome in ("cancelling", "cancelled", "done")
        client.wait(running["job_id"], timeout=60.0)

    def test_stats_and_health(self, served):
        client, _gw, _uds = served
        assert client.health()["status"] == "ok"
        job = client.submit("isx", {"keys_per_pe": 64}, seed=76)
        client.wait(job["job_id"], timeout=30.0)
        stats = client.stats()
        assert stats["jobs"].get("done") == 1
        assert "default" in stats["tenants"]

    def test_drain_then_submit_is_503(self, served):
        client, _gw, _uds = served
        assert client.drain(timeout=30.0) is True
        with pytest.raises(ServiceError) as exc:
            client.submit("isx", {"keys_per_pe": 64}, seed=77)
        assert exc.value.status == 503
        assert client.health()["draining"] is True

    def test_server_rejects_ambiguous_transport(self):
        gw = JobGateway(ServiceConfig())
        with pytest.raises(ConfigError):
            ServiceServer(gw, uds="/tmp/x.sock", host="127.0.0.1")


class TestServiceSmoke:
    """The CI ``service-smoke`` scenario: two tenants, a burst of jobs over
    a live UDS, every result correct, clean remote drain."""

    def test_two_tenant_burst_and_drain(self, tmp_path):
        uds = str(tmp_path / "smoke.sock")
        gw = JobGateway(ServiceConfig(backends=("sim",), pool_size=2,
                                      tenant_weights={"heavy": 2.0}))
        server = ServiceServer(gw, uds=uds).start()
        specs = [("isx", {"keys_per_pe": 32 + 8 * (i % 3)}, i % 5)
                 for i in range(40)]
        results = {}
        failures = []

        def drive(tenant, offset):
            with ServiceClient(uds=uds) as client:
                for i in range(offset, len(specs), 2):
                    app, params, seed = specs[i]
                    job = client.submit(app, params, seed=seed, tenant=tenant)
                    doc = client.wait(job["job_id"], timeout=60.0)
                    if doc["state"] != "done":
                        failures.append((i, doc.get("error")))
                    else:
                        results[i] = doc["result"]

        threads = [threading.Thread(target=drive, args=("heavy", 0)),
                   threading.Thread(target=drive, args=("light", 1))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)

        try:
            assert not failures, failures
            assert len(results) == len(specs)
            # Identical specs produced identical results across tenants.
            by_spec = {}
            for i, (app, params, seed) in enumerate(specs):
                key = (app, tuple(sorted(params.items())), seed)
                by_spec.setdefault(key, set()).add(repr(results[i]))
            assert all(len(vals) == 1 for vals in by_spec.values())
            with ServiceClient(uds=uds) as client:
                assert client.drain(timeout=60.0) is True
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# units: client backoff (no server; request() stubbed)
# ---------------------------------------------------------------------------
class TestClientBackoff:
    """The 429 retry contract: honor the server's ``retry_after`` hint as a
    floor, decorrelate concurrent clients with seeded jitter, and replay
    bit-for-bit from the seed."""

    def _client(self, seed, delays, attempts=6):
        c = ServiceClient(uds="/tmp/never-connected.sock", seed=seed,
                          submit_attempts=attempts, backoff_base=0.02,
                          backoff_cap=0.5, sleep=delays.append)
        return c

    def test_retry_after_hint_is_a_floor(self):
        delays = []
        c = self._client(0, delays)
        docs = [{"_status": 429, "retry_after": 0.25},
                {"_status": 429, "retry_after": 0.1},
                {"_status": 202, "job": {"job_id": "j1"}}]
        c.request = lambda method, path, body=None: docs.pop(0)
        assert c.submit("isx", {})["job_id"] == "j1"
        assert len(delays) == 2
        # hint + jitter, never below the hint, jitter bounded by the window
        assert 0.25 <= delays[0] <= 0.25 + 0.02
        assert 0.1 <= delays[1] <= 0.1 + 0.04

    def test_unhinted_backoff_stays_in_exponential_window(self):
        delays = []
        c = self._client(3, delays)
        docs = [{"_status": 429}] * 5 + [{"_status": 202, "job": {}}]
        c.request = lambda method, path, body=None: docs.pop(0)
        c.submit("isx", {})
        assert len(delays) == 5
        for attempt, d in enumerate(delays):
            window = min(0.02 * 2 ** attempt, 0.5)
            assert window / 2 <= d <= window

    def test_seeded_jitter_replays_and_decorrelates(self):
        def run(seed):
            delays = []
            c = self._client(seed, delays)
            docs = [{"_status": 429, "retry_after": 0.05}] * 4 + [
                {"_status": 202, "job": {}}]
            c.request = lambda method, path, body=None: docs.pop(0)
            c.submit("isx", {})
            return delays

        assert run(1) == run(1)   # same seed: identical schedule
        assert run(1) != run(2)   # different seeds: decorrelated

    def test_attempts_exhausted_raises_service_error(self):
        delays = []
        c = self._client(0, delays, attempts=3)
        c.request = lambda method, path, body=None: {
            "_status": 429, "retry_after": 0.05, "error": "tenant queue full"}
        with pytest.raises(ServiceError, match="tenant queue full"):
            c.submit("isx", {})
        assert len(delays) == 2   # sleeps between attempts only
