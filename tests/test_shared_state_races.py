"""Regression tests for the shared-state races the multiprocess backend
exposed (ISSUE 6 satellites).

Before the fixes, two structures shared across rank threads did unlocked
check-then-act:

- ``SignatureTable`` (symmetric-heap symmetry registry): two PEs allocating
  the same ``sym_id`` concurrently could both observe "no signature yet" and
  skip the cross-PE shape check, letting an asymmetric allocation through
  silently; stale signatures also outlived ``free``, poisoning id reuse.
- ``BufferPool``: acquire (worker thread) and release (delivery thread)
  raced on the free lists and ``hits``/``misses``/``released`` counters.

Each test here drives the racy interleaving directly with barrier-
synchronized threads and fails on the pre-fix code with high probability
per iteration (and the loops run enough iterations to make a miss
vanishingly unlikely).
"""

import threading

import numpy as np
import pytest

from repro.shmem.heap import SignatureTable, SymmetricHeap
from repro.util.bufpool import BufferPool
from repro.util.errors import ShmemError

ITERS = 40


# ----------------------------------------------------------------------
# SignatureTable / SymmetricHeap
# ----------------------------------------------------------------------
class TestSignatureRace:
    def test_concurrent_conflicting_register_exactly_one_wins(self):
        """Pre-fix: both racers could pass the symmetry check (0 errors)."""
        for _ in range(ITERS):
            table = SignatureTable()
            barrier = threading.Barrier(2)
            errors = []

            def racer(rank, sig):
                barrier.wait()
                try:
                    table.register(0, sig, rank)
                except ShmemError as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=racer, args=(0, ((8,), "int64"))),
                threading.Thread(target=racer, args=(1, ((16,), "int64"))),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(errors) == 1, \
                "conflicting concurrent allocations both passed the check"
            assert "asymmetric allocation" in str(errors[0])

    def test_concurrent_matching_register_both_pass(self):
        for _ in range(ITERS):
            table = SignatureTable()
            barrier = threading.Barrier(2)
            errors = []

            def racer(rank):
                barrier.wait()
                try:
                    table.register(0, ((8,), "int64"), rank)
                except ShmemError as exc:  # pragma: no cover - the bug
                    errors.append(exc)

            threads = [threading.Thread(target=racer, args=(r,))
                       for r in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []

    def test_free_retires_signature_for_id_reuse(self):
        """Pre-fix: the signature outlived ``free``, so reallocating the
        same sym_id with a new shape false-failed (or false-passed)."""
        table = SignatureTable()
        heaps = [SymmetricHeap(rank, table) for rank in range(2)]
        arrs = [h.allocate((8,), dtype=np.int64) for h in heaps]
        assert 0 in table
        heaps[0].free(arrs[0])
        assert 0 in table, "signature dropped while a PE still holds it"
        heaps[1].free(arrs[1])
        assert 0 not in table
        # The id is reusable with a different shape now.
        for h in heaps:
            h._next_id = 0
        out = [h.allocate((32,), dtype=np.float64) for h in heaps]
        assert all(a.shape == (32,) for a in out)

    def test_heap_level_asymmetric_allocate_detected_under_race(self):
        for _ in range(ITERS):
            table = SignatureTable()
            heaps = [SymmetricHeap(rank, table) for rank in range(2)]
            shapes = [(8,), (16,)]
            barrier = threading.Barrier(2)
            errors = []

            def racer(rank):
                barrier.wait()
                try:
                    heaps[rank].allocate(shapes[rank], dtype=np.int64)
                except ShmemError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=racer, args=(r,))
                       for r in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(errors) == 1


# ----------------------------------------------------------------------
# BufferPool
# ----------------------------------------------------------------------
class TestBufferPoolThreaded:
    def test_stress_counters_and_data_integrity(self):
        """4 threads hammer take_copy/release; pre-fix code lost counter
        updates and could hand one buffer to two takers."""
        pool = BufferPool(max_per_class=8)
        nthreads, per_thread = 4, 300
        live_raws = set()
        live_lock = threading.Lock()
        failures = []
        start = threading.Barrier(nthreads)

        def worker(tid):
            start.wait()
            try:
                for i in range(per_thread):
                    data = np.full(1 + (i % 7), tid * 1000 + i,
                                   dtype=np.int64)
                    view = pool.take_copy(data)
                    raw_id = id(view._raw)
                    with live_lock:
                        if raw_id in live_raws:
                            failures.append(
                                f"buffer handed out twice: {raw_id}")
                        live_raws.add(raw_id)
                    if not np.array_equal(view, data):
                        failures.append(f"corrupted copy on thread {tid}")
                    with live_lock:
                        live_raws.discard(raw_id)
                    view.release()
            except Exception as exc:  # noqa: BLE001 - surface in the test
                failures.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = nthreads * per_thread
        assert failures == []
        assert pool.hits + pool.misses == total, \
            "lost counter updates under contention"
        assert pool.released == total
        assert pool.free_buffers <= pool.max_per_class * 7

    def test_release_race_gives_back_exactly_once(self):
        """Two threads race ``release()`` on one owner view; ownership must
        transfer exactly once (a double give-back would let the pool hand
        the same storage to two subsequent takers)."""
        for _ in range(ITERS):
            pool = BufferPool(max_per_class=8)
            view = pool.take_copy(np.arange(16, dtype=np.int64))
            barrier = threading.Barrier(2)

            def racer():
                barrier.wait()
                view.release()

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert pool.released == 1
            assert pool.free_buffers == 1

    def test_wire_copies_are_plain_arrays(self):
        """Views derived from a pooled array (and pickled copies) must not
        carry the pool reference — releasing them is a no-op."""
        import pickle

        pool = BufferPool(max_per_class=8)
        view = pool.take_copy(np.arange(8, dtype=np.int64))
        clone = pickle.loads(pickle.dumps(np.asarray(view)))
        sub = view[2:4]
        sub.release()
        assert pool.released == 0
        assert not hasattr(clone, "release") or clone.base is None
        view.release()
        assert pool.released == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(max_per_class=0)
