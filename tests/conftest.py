"""Shared fixtures for the pyhiper test suite."""

import pytest

from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform.hwloc import discover, machine
from repro.runtime.runtime import HiperRuntime


@pytest.fixture
def sim_rt():
    """A started 4-worker runtime on the simulated executor."""
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=4)
    rt = HiperRuntime(model, ex).start()
    yield rt
    rt.shutdown()
    ex.shutdown()


@pytest.fixture
def sim_rt1():
    """A started single-worker runtime on the simulated executor."""
    ex = SimExecutor()
    model = discover(machine("workstation"), num_workers=1)
    rt = HiperRuntime(model, ex).start()
    yield rt
    rt.shutdown()
    ex.shutdown()


@pytest.fixture
def threaded_rt():
    """A started 4-worker runtime on real OS threads."""
    ex = ThreadedExecutor(block_timeout=20.0)
    model = discover(machine("workstation"), num_workers=4,
                     with_interconnect=False)
    rt = HiperRuntime(model, ex).start()
    yield rt
    rt.shutdown()
    ex.shutdown()
