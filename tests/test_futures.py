"""Promises/futures: single assignment, callbacks, combinators, waiting."""

import pytest

from repro.runtime.api import async_, async_future, finish
from repro.runtime.future import (
    Future,
    Promise,
    satisfied_future,
    when_all,
    when_any,
)
from repro.util.errors import PromiseError


class TestPromiseBasics:
    def test_put_then_value(self):
        p = Promise("x")
        p.put(41)
        assert p.get_future().value() == 41

    def test_put_none_default(self):
        p = Promise()
        p.put()
        assert p.get_future().value() is None

    def test_double_put_raises(self):
        p = Promise("dup")
        p.put(1)
        with pytest.raises(PromiseError, match="twice"):
            p.put(2)

    def test_put_after_put_exception_raises(self):
        p = Promise()
        p.put_exception(ValueError("boom"))
        with pytest.raises(PromiseError):
            p.put(1)

    def test_put_exception_requires_exception(self):
        with pytest.raises(TypeError):
            Promise().put_exception("not an exception")

    def test_value_before_put_raises(self):
        with pytest.raises(PromiseError, match="before satisfaction"):
            Promise("early").get_future().value()

    def test_exception_rethrown_on_value(self):
        p = Promise()
        p.put_exception(RuntimeError("kaput"))
        with pytest.raises(RuntimeError, match="kaput"):
            p.get_future().value()

    def test_shared_future_handle(self):
        p = Promise()
        assert p.get_future() is p.get_future()


class TestCallbacks:
    def test_callback_after_put_runs_immediately(self):
        p = Promise()
        p.put(7)
        seen = []
        p.get_future().on_ready(lambda f: seen.append(f.value()))
        assert seen == [7]

    def test_callbacks_run_in_registration_order(self):
        p = Promise()
        order = []
        f = p.get_future()
        f.on_ready(lambda _: order.append("a"))
        f.on_ready(lambda _: order.append("b"))
        p.put(None)
        assert order == ["a", "b"]

    def test_callback_runs_exactly_once(self):
        p = Promise()
        count = [0]
        p.get_future().on_ready(lambda _: count.__setitem__(0, count[0] + 1))
        p.put(None)
        assert count[0] == 1


class TestCombinators:
    def test_satisfied_future(self):
        f = satisfied_future(13)
        assert f.satisfied and f.value() == 13

    def test_when_all_values_in_order(self):
        ps = [Promise() for _ in range(3)]
        combined = when_all([p.get_future() for p in ps])
        ps[2].put("c")
        ps[0].put("a")
        assert not combined.satisfied
        ps[1].put("b")
        assert combined.value() == ["a", "b", "c"]

    def test_when_all_empty(self):
        assert when_all([]).value() == []

    def test_when_all_propagates_failure(self):
        ps = [Promise(), Promise()]
        combined = when_all([p.get_future() for p in ps])
        ps[0].put_exception(KeyError("bad"))
        ps[1].put(1)
        with pytest.raises(KeyError):
            combined.value()

    def test_when_any_first_wins(self):
        ps = [Promise(), Promise()]
        combined = when_any([p.get_future() for p in ps])
        ps[1].put("late-binding")
        assert combined.value() == (1, "late-binding")
        ps[0].put("ignored")  # must not double-fire
        assert combined.value() == (1, "late-binding")

    def test_when_any_empty_rejected(self):
        with pytest.raises(PromiseError):
            when_any([])


class TestWaitInTasks:
    def test_wait_returns_value(self, sim_rt):
        def main():
            f = async_future(lambda: 10 * 2)
            return f.wait() + f.get()

        assert sim_rt.run(main) == 40

    def test_wait_reraises_task_exception(self, sim_rt):
        def boom():
            raise ValueError("inner")

        def main():
            f = async_future(boom)
            with pytest.raises(ValueError, match="inner"):
                f.get()
            return "survived"

        assert sim_rt.run(main) == "survived"

    def test_wait_outside_any_context_raises(self):
        p = Promise()
        from repro.util.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError):
            p.get_future().wait()

    def test_done_time_tracks_virtual_time(self, sim_rt):
        from repro.runtime.api import charge

        def main():
            f = async_future(lambda: charge(5e-3))
            f.wait()
            return f.done_time()

        assert sim_rt.run(main) == pytest.approx(5e-3)

    def test_done_time_before_satisfaction_raises(self):
        with pytest.raises(PromiseError):
            Promise().get_future().done_time()


class TestCombinatorExceptionPropagation:
    """Regression tests for the audit of ISSUE 'resilience' satellite (b):
    one put_exception must fail a combined future exactly once — never
    deadlock it, never double-fire it."""

    def test_when_all_fails_fast_without_waiting_for_stragglers(self):
        # Before the fail-fast rewrite this deadlocked: one failed input +
        # one never-satisfied input left the combined future pending forever.
        failed, never = Promise(), Promise()
        combined = when_all([failed.get_future(), never.get_future()])
        failed.put_exception(KeyError("early"))
        assert combined.satisfied
        with pytest.raises(KeyError, match="early"):
            combined.value()

    def test_when_all_fail_fast_in_task_context(self, sim_rt):
        def main():
            failed, never = Promise(), Promise()
            combined = when_all([failed.get_future(), never.get_future()])
            sim_rt.executor.call_later(
                1e-5, lambda: failed.put_exception(ValueError("down")))
            with pytest.raises(ValueError, match="down"):
                combined.get()  # must not raise DeadlockError
            return True

        assert sim_rt.run(main)

    def test_when_all_single_failure_fires_exactly_once(self):
        ps = [Promise() for _ in range(3)]
        combined = when_all([p.get_future() for p in ps])
        fires = []
        combined.on_ready(lambda f: fires.append(f))
        ps[1].put_exception(RuntimeError("one"))
        # Late arrivals — clean or failed — must not re-fire the output.
        ps[0].put(1)
        ps[2].put_exception(RuntimeError("two"))
        assert len(fires) == 1
        with pytest.raises(RuntimeError, match="one"):
            combined.value()

    def test_when_all_still_collects_clean_values(self):
        ps = [Promise() for _ in range(2)]
        combined = when_all([p.get_future() for p in ps])
        ps[0].put("a")
        ps[1].put("b")
        assert combined.value() == ["a", "b"]

    def test_when_any_failed_winner_fires_exactly_once(self):
        ps = [Promise(), Promise()]
        combined = when_any([p.get_future() for p in ps])
        fires = []
        combined.on_ready(lambda f: fires.append(f))
        ps[0].put_exception(OSError("winner failed"))
        ps[1].put("loser")  # must be ignored
        assert len(fires) == 1
        with pytest.raises(OSError, match="winner failed"):
            combined.value()


class TestCombinatorCallbackRetention:
    """Regression: combinators must detach dead callbacks from long-lived
    inputs. A warm pool's shutdown future raced against per-job futures
    accumulated one dead callback per job for the daemon's lifetime."""

    def test_when_any_winner_detaches_losers(self):
        daemon = Promise(name="daemon-shutdown")
        for i in range(50):
            job = Promise(name=f"job-{i}")
            out = when_any([daemon.get_future(), job.get_future()])
            job.put(i)
            assert out.value() == (1, i)
        assert daemon._callbacks == []

    def test_when_any_already_satisfied_input_sweeps_all(self):
        # The winner fires during registration (input already satisfied):
        # the sweep must still detach from the pending loser.
        daemon = Promise(name="daemon-shutdown")
        done = Promise(name="job")
        done.put("v")
        out = when_any([done.get_future(), daemon.get_future()])
        assert out.value() == (0, "v")
        assert daemon._callbacks == []

    def test_when_any_losers_garbage_collectable(self):
        import gc
        import weakref

        class Payload:
            pass

        daemon = Promise(name="daemon-shutdown")
        payload = Payload()
        job = Promise(name="job")
        out = when_any([daemon.get_future(), job.get_future()])
        job.put(payload)
        assert out.value() == (1, payload)
        ref = weakref.ref(payload)
        # Drop every reference except whatever the daemon promise retains.
        # Before the detach fix, daemon._callbacks held the when_any closure
        # -> registered futures -> job promise -> payload: a leak.
        del payload, job, out
        gc.collect()
        assert ref() is None
        assert daemon._callbacks == []

    def test_when_all_fail_fast_detaches_stragglers(self):
        never = Promise(name="never")
        failed = Promise(name="failed")
        out = when_all([never.get_future(), failed.get_future()])
        failed.put_exception(ValueError("down"))
        with pytest.raises(ValueError):
            out.value()
        assert never._callbacks == []
