"""Hypothesis-driven concurrency stress (ISSUE 4 satellite d): random spawn
trees under random worker counts must produce identical results on the
simulated and threaded engines, quiesce cleanly, and replay bit-for-bit
under the interleaving executor."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform.hwloc import discover, machine
from repro.runtime.api import async_, async_future, finish
from repro.runtime.runtime import HiperRuntime
from repro.verify import check_quiesce, run_once

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _random_tree_workload(shape):
    """Build a root body from a hypothesis-drawn tree shape.

    ``shape`` is a list of per-level fan-outs; each level alternates between
    fire-and-forget spawns (finish-joined) and future-returning spawns, so
    both synchronization styles get shuffled."""

    def node(level):
        if level >= len(shape):
            return 1
        fan = shape[level]
        acc = []
        futs = []

        def body():
            for i in range(fan):
                if i % 2 == 0:
                    async_(lambda lv=level: acc.append(node(lv + 1)),
                           name=f"t{level}.{i}")
                else:
                    futs.append(async_future(
                        lambda lv=level: node(lv + 1), name=f"f{level}.{i}"))

        finish(body, name=f"lvl{level}")
        return 1 + sum(acc) + sum(f.value() for f in futs)

    def root():
        return node(0)

    return root


def _expected_nodes(shape):
    total, width = 1, 1
    for fan in shape:
        width *= fan
        total += width
    return total


tree_shapes = st.lists(st.integers(min_value=1, max_value=4),
                       min_size=1, max_size=3)


class TestStressDifferential:
    @_settings
    @given(shape=tree_shapes, workers=st.integers(min_value=1, max_value=6))
    def test_sim_and_threads_agree_and_quiesce(self, shape, workers):
        want = _expected_nodes(shape)

        sim = SimExecutor()
        model = discover(machine("workstation"), num_workers=workers)
        rt = HiperRuntime(model, sim).start()
        sim_result = rt.run(_random_tree_workload(shape))
        sim_inv = check_quiesce(rt)
        rt.shutdown()
        sim.shutdown()

        thr = ThreadedExecutor(block_timeout=20.0)
        model = discover(machine("workstation"), num_workers=workers,
                         with_interconnect=False)
        rt = HiperRuntime(model, thr).start()
        thr_result = rt.run(_random_tree_workload(shape))
        thr_inv = check_quiesce(rt)
        rt.shutdown()
        thr.shutdown()

        assert sim_result == want
        assert thr_result == want
        assert sim_inv.ok, sim_inv.describe()
        assert thr_inv.ok, thr_inv.describe()

    @_settings
    @given(shape=tree_shapes,
           strategy=st.sampled_from(["random", "pct", "pbound"]),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_interleave_explores_cleanly_and_replays(self, shape, strategy,
                                                     seed):
        out = run_once(strategy, seed, workers=3,
                       workload=_random_tree_workload(shape))
        assert out.ok, out.describe()
        assert out.result == _expected_nodes(shape)
        again = run_once(strategy, seed, workers=3,
                         workload=_random_tree_workload(shape))
        assert again.digest == out.digest
