"""Executor internals: event ordering, clock semantics, deadlock reporting,
context management, threaded watchdog and timers, harness utilities."""

import threading
import time

import pytest

from repro.bench import Series, cluster_for, source_loc, sweep
from repro.exec.sim import SimExecutor
from repro.exec.threaded import ThreadedExecutor
from repro.platform import discover, machine
from repro.runtime.api import async_, async_future, charge, finish, now, timer_future
from repro.runtime.context import (
    ExecContext,
    context_depth,
    current_context,
    pop_context,
    push_context,
    require_context,
    scoped_context,
)
from repro.runtime.finish import FinishScope
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import ConfigError, DeadlockError, RuntimeStateError


class TestSimExecutorEvents:
    def test_call_later_relative_to_caller_clock(self, sim_rt1):
        def main():
            charge(2e-3)
            fired = []
            sim_rt1.executor.call_later(1e-3, lambda: fired.append(now()))
            timer_future(2e-3).wait()
            return fired

        # caller clock was 2ms; event fires at 3ms
        assert sim_rt1.run(main) == [pytest.approx(3e-3)]

    def test_call_at_absolute(self, sim_rt1):
        def main():
            charge(5e-3)
            fired = []
            sim_rt1.executor.call_at(1e-3, lambda: fired.append(True))
            # the event is already in the past relative to this worker, but
            # fires at its own absolute time on the event floor
            timer_future(1e-3).wait()
            return fired

        assert sim_rt1.run(main) == [True]

    def test_events_at_same_time_batch_in_fifo_order(self, sim_rt1):
        order = []

        def main():
            for i in range(5):
                sim_rt1.executor.call_at(1e-3, lambda i=i: order.append(i))
            timer_future(2e-3).wait()
            return order

        assert sim_rt1.run(main) == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim_rt1):
        with pytest.raises(ConfigError):
            sim_rt1.executor.call_later(-1, lambda: None)

    def test_call_at_in_the_virtual_past_clamps_to_event_floor(self, sim_rt1):
        """Regression: ``call_at`` used to clamp to 0.0 instead of the event
        floor, so an event stamped in the virtual past could sort before an
        event scheduled *earlier in real causality* — here, B (stamped 1ms)
        would overtake A (stamped 2ms) even though A was scheduled first from
        the same 5ms event. Clamping to the floor stamps both at 5ms and the
        same-timestamp batch preserves FIFO scheduling order."""
        order = []

        def main():
            ex = sim_rt1.executor

            def at_five():
                ex.call_at(2e-3, lambda: order.append("A"))
                ex.call_at(1e-3, lambda: order.append("B"))

            ex.call_later(5e-3, at_five)
            timer_future(6e-3).wait()
            return order

        assert sim_rt1.run(main) == ["A", "B"]

    def test_makespan_covers_worker_clocks_and_events(self, sim_rt):
        def main():
            charge(1e-3)

        sim_rt.run(main)
        assert sim_rt.executor.makespan() >= 1e-3

    def test_now_outside_worker_is_event_floor(self, sim_rt1):
        probes = []

        def main():
            sim_rt1.executor.call_later(
                4e-3, lambda: probes.append(sim_rt1.executor.now()))
            timer_future(5e-3).wait()

        sim_rt1.run(main)
        assert probes == [pytest.approx(4e-3)]

    def test_parked_dependency_prevents_quiescence(self):
        """A task predicated on an unsatisfiable future holds its finish
        scope open; the engine proves the stall instead of hanging."""
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=1, detail="flat")
        rt = HiperRuntime(model, ex).start()

        def main():
            rt.spawn(lambda: None, await_future=Promise("never").get_future(),
                     name="parked")

        with pytest.raises(DeadlockError, match="quiesced"):
            rt.run(main)

    def test_run_root_not_reentrant(self, sim_rt1):
        def main():
            sim_rt1.run(lambda: None)  # illegal nested drive

        with pytest.raises(RuntimeStateError, match="re-entered"):
            sim_rt1.run(main)

    def test_determinism_across_instances(self):
        def build_and_run(seed):
            ex = SimExecutor()
            model = discover(machine("workstation"), num_workers=4)
            rt = HiperRuntime(model, ex, seed=seed).start()
            rt.run(lambda: finish(lambda: [
                async_(lambda i=i: charge((i % 7 + 1) * 1e-5))
                for i in range(50)]))
            return ex.makespan()

        assert build_and_run(3) == build_and_run(3)

    def test_shutdown_clears_state(self):
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=1)
        HiperRuntime(model, ex).start()
        ex.shutdown()
        with pytest.raises(RuntimeStateError):
            ex.register_runtime(HiperRuntime(
                discover(machine("workstation"), num_workers=1),
                SimExecutor()))


class TestContextStack:
    def test_push_pop_balance(self):
        d0 = context_depth()
        ctx = ExecContext(SimExecutor())
        push_context(ctx)
        assert current_context() is ctx
        pop_context()
        assert context_depth() == d0

    def test_scoped_context_restores_on_exception(self):
        d0 = context_depth()
        with pytest.raises(ValueError):
            with scoped_context(ExecContext(SimExecutor())):
                raise ValueError("boom")
        assert context_depth() == d0

    def test_pop_empty_raises(self):
        while context_depth():
            pop_context()
        with pytest.raises(RuntimeStateError):
            pop_context()

    def test_require_context_outside_raises(self):
        while context_depth():
            pop_context()
        with pytest.raises(RuntimeStateError, match="no active runtime"):
            require_context()


class TestThreadedExecutorMechanics:
    def test_call_later_fires(self, threaded_rt):
        def main():
            p = Promise("timer")
            threaded_rt.executor.call_later(0.01, lambda: p.put("fired"))
            return p.get_future().wait()

        assert threaded_rt.run(main) == "fired"

    def test_watchdog_converts_hang_to_deadlock_error(self):
        ex = ThreadedExecutor(block_timeout=0.3)
        model = discover(machine("workstation"), num_workers=2,
                         with_interconnect=False)
        rt = HiperRuntime(model, ex).start()

        def main():
            Promise("never").get_future().wait()

        t0 = time.monotonic()
        with pytest.raises(DeadlockError, match="watchdog"):
            rt.run(main)
        assert time.monotonic() - t0 < 5.0
        rt.shutdown()
        ex.shutdown()

    def test_charge_is_accounting_only(self, threaded_rt):
        def main():
            t0 = time.monotonic()
            charge(5.0)  # must NOT sleep 5 wall seconds
            return time.monotonic() - t0

        assert threaded_rt.run(main) < 1.0

    def test_invalid_block_timeout(self):
        with pytest.raises(ConfigError):
            ThreadedExecutor(block_timeout=0)

    def test_shutdown_idempotent(self):
        ex = ThreadedExecutor()
        model = discover(machine("workstation"), num_workers=2,
                         with_interconnect=False)
        rt = HiperRuntime(model, ex).start()
        rt.run(lambda: async_future(lambda: 1).get())
        ex.shutdown()
        ex.shutdown()


class TestBenchHarness:
    def test_cluster_for_layouts(self):
        flat = cluster_for("titan", 2, layout="flat")
        hyb = cluster_for("titan", 2, layout="hybrid")
        assert flat.nranks == 32 and flat.workers_per_rank == 1
        assert hyb.nranks == 2 and hyb.workers_per_rank == 16

    def test_cluster_for_workers_cap(self):
        capped = cluster_for("edison", 1, layout="hybrid", workers_cap=4)
        assert capped.workers_per_rank == 4

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            cluster_for("titan", 1, layout="diagonal")

    def test_sweep_table_and_skip(self):
        calls = []

        class FakeResult:
            def __init__(self, v):
                self.makespan = v

        def runner(nodes):
            calls.append(nodes)
            return FakeResult(nodes * 1e-3)

        sw = sweep(
            "t", [Series("a", runner), Series("b", runner, skip_above=2)],
            [1, 2, 4],
        )
        assert calls == [1, 2, 4, 1, 2]
        assert sw.values["a"][4] == pytest.approx(4.0)
        assert 4 not in sw.values["b"]
        table = sw.table()
        assert "a" in table and "nodes" in table and "-" in table
        flat = sw.flat()
        assert flat["a@2"] == pytest.approx(2.0)

    def test_source_loc_counts_nonblank(self):
        def tiny():
            x = 1  # a comment line below

            # pure comment
            return x

        assert source_loc(tiny) == 3


class TestInversionDiagnostic:
    def test_blocking_spmd_pattern_names_the_inversion(self):
        """Plain blocking collectives in an iterative SPMD main hit the
        help-stack inversion; the simulator must name it and point at the
        coroutine style instead of reporting a bare stall."""
        from repro.distrib import ClusterConfig, spmd_run
        from repro.shmem import shmem_factory

        def main(ctx):
            sh = ctx.shmem
            sym = sh.malloc(1)
            sh.barrier_all()  # blocking: unsafe in multi-round SPMD mains
            sh.atomic_fetch_add(sym, 1, 0)
            sh.barrier_all()
            return 1

        with pytest.raises(Exception, match="inversion"):
            spmd_run(
                main,
                ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2,
                              machine=machine("titan")),
                module_factories=[shmem_factory()],
            )


class TestThreadedShutdownLeakDetection:
    """ISSUE 'resilience' satellite (a): shutdown must detect worker threads
    that survive the stop signal and raise instead of leaking them."""

    def _rt(self, join_timeout):
        ex = ThreadedExecutor(block_timeout=20.0, join_timeout=join_timeout)
        model = discover(machine("workstation"), num_workers=2,
                         with_interconnect=False)
        return ex, HiperRuntime(model, ex).start()

    def test_clean_shutdown_raises_nothing(self):
        ex, rt = self._rt(join_timeout=5.0)
        rt.run(lambda: async_future(lambda: 7).get())
        rt.shutdown()
        ex.shutdown()

    def test_stuck_task_body_is_reported(self):
        ex, rt = self._rt(join_timeout=0.2)
        release = threading.Event()
        scope = FinishScope(name="detached", lock_cls=ex.lock_class)

        def stuck():
            release.wait(timeout=10.0)  # ignores the stop signal

        def main():
            # Detached scope: root completes while the body still blocks.
            rt.spawn(stuck, scope=scope)
            return "root-done"

        assert rt.run(main) == "root-done"
        time.sleep(0.1)  # let a worker actually enter the stuck body
        with pytest.raises(RuntimeStateError, match="leaked.*thread"):
            ex.shutdown()
        release.set()  # unblock the daemon thread before the test exits

    def test_invalid_join_timeout(self):
        with pytest.raises(ConfigError):
            ThreadedExecutor(join_timeout=0)
