"""Scheduler determinism and occupancy-index invariants.

Two families of guarantees guard the hot-path overhaul (occupancy-indexed
work discovery + O(log W) heap worker selection):

1. **Determinism.** The simulated executor's schedule is a pure function of
   the seed: repeat runs are bit-for-bit identical, the lazy-deletion heap
   reproduces the legacy O(W) min-scan's selection order exactly
   (``selection="heap"`` vs ``selection="scan"``), and a golden workload
   pins makespan / per-worker clocks / steal counts so any accidental
   schedule change fails loudly.

2. **Occupancy consistency.** After any interleaving of push/pop/steal, each
   place's ``mask`` has exactly the bits of its non-empty slots and ``ready``
   equals the total queued tasks — for both the lock-free slots the sim
   executor uses and the locked slots of the threaded executor (including a
   multi-thread hammer).
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.sim import SimExecutor
from repro.platform import discover, machine
from repro.runtime.api import async_, charge, finish
from repro.runtime.deques import DequeTable, NullLock
from repro.runtime.runtime import HiperRuntime
from repro.runtime.task import Task

_settings = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def _run_reference_workload(selection, engine="objects"):
    """Fixed-seed fork/join workload with uneven charges (induces steals);
    returns every schedule-describing observable."""
    ex = SimExecutor(selection=selection, engine=engine)
    model = discover(machine("workstation"), num_workers=4)
    rt = HiperRuntime(model, ex, seed=7).start()

    def leaf(i):
        charge((i % 7 + 1) * 1e-5)

    def mid(i):
        charge((i % 5 + 1) * 1e-4)
        for j in range(3):
            async_(lambda i=i, j=j: leaf(i * 3 + j))

    rt.run(lambda: finish(
        lambda: [async_(lambda i=i: mid(i)) for i in range(40)]))
    out = {
        "makespan": ex.makespan(),
        "clocks": ex.worker_clocks(),
        "steals": [w.steals for w in rt.workers],
        "tasks": [w.tasks_run for w in rt.workers],
        "pop": rt.stats.counters[("core", "pop")],
        "steal": rt.stats.counters[("core", "steal")],
    }
    rt.shutdown()
    ex.shutdown()
    return out


#: Golden schedule for the reference workload. Exact floats on purpose: the
#: sim is deterministic arithmetic over charged costs, so any drift means the
#: schedule changed (not a numerics issue) and must be reviewed.
GOLDEN = {
    "makespan": 0.0051400000000000005,
    "clocks": [0.0051400000000000005, 0.005110000000000001,
               0.0051400000000000005, 0.005090000000000001],
    "steals": [1, 18, 19, 16],
    "tasks": [46, 38, 37, 40],
    "pop": 107,
    "steal": 54,
}


class TestDeterministicSchedule:
    def test_repeat_runs_identical(self):
        assert _run_reference_workload("heap") == _run_reference_workload("heap")

    def test_heap_selection_matches_legacy_scan(self):
        """The O(log W) lazy-deletion heap must reproduce the O(W) min-scan
        schedule bit-for-bit (same makespan, same per-worker clocks, same
        steal counts) — the selection key is identical, only the lookup
        structure changed."""
        assert _run_reference_workload("heap") == _run_reference_workload("scan")

    def test_golden_schedule(self):
        assert _run_reference_workload("heap") == GOLDEN

    def test_flat_engine_matches_golden(self):
        """The slab/calendar event engine must reproduce the objects
        engine's golden schedule bit-for-bit — same makespan, clocks, steal
        and task counts (the flat engine reorders nothing, it only changes
        how event records are stored)."""
        assert _run_reference_workload("heap", engine="flat") == GOLDEN

    def test_invalid_selection_rejected(self):
        from repro.util.errors import ConfigError
        with pytest.raises(ConfigError):
            SimExecutor(selection="magic")


# ----------------------------------------------------------------------
# occupancy invariants
# ----------------------------------------------------------------------
def _assert_occupancy_consistent(table):
    total = 0
    for pd in table._by_place_id.values():
        expected_mask = 0
        expected_ready = 0
        for i, slot in enumerate(pd.slots):
            n = len(slot._items)
            if n:
                expected_mask |= 1 << i
            expected_ready += n
        assert pd.mask == expected_mask, pd.place.name
        assert pd.ready == expected_ready, pd.place.name
        assert pd.total() == expected_ready
        total += expected_ready
    assert table.total_ready() == total


def _make_table(lock_cls):
    model = discover(machine("workstation"), num_workers=4)
    return DequeTable(model, lock_cls=lock_cls), list(model)


def _task_at(place, wid):
    return Task(lambda: None, place=place, created_by=wid)


_ops_strategy = st.lists(
    st.tuples(st.sampled_from(["push", "pop", "steal"]),
              st.integers(0, 3),      # worker id
              st.integers(0, 255)),   # place selector (mod #places)
    max_size=200,
)


class TestOccupancyInvariants:
    @_settings
    @given(ops=_ops_strategy)
    def test_unsync_slots_consistent_after_any_interleaving(self, ops):
        """Lock-free slots (sim executor): mask/ready track exactly."""
        table, places = _make_table(NullLock)
        self._apply(table, places, ops)

    @_settings
    @given(ops=_ops_strategy)
    def test_locked_slots_consistent_after_any_interleaving(self, ops):
        """Locked slots (threaded executor), driven single-threaded here:
        same exact-tracking guarantee."""
        table, places = _make_table(threading.Lock)
        self._apply(table, places, ops)

    @staticmethod
    def _apply(table, places, ops):
        order = list(range(4))
        for op, wid, psel in ops:
            place = places[psel % len(places)]
            pd = table.at(place)
            if op == "push":
                table.push(_task_at(place, wid))
            elif op == "pop":
                pd.pop_own(wid)
            else:
                pd.steal_from_others(wid, order)
            _assert_occupancy_consistent(table)

    def test_threaded_hammer_conserves_counts(self):
        """Four real threads pushing/popping/stealing concurrently: at join,
        the occupancy index must agree with the slots and the push/take
        ledger (tasks are neither lost nor double-counted)."""
        table, places = _make_table(threading.Lock)
        place = places[0]
        pd = table.at(place)
        n_threads, per_thread = 4, 400
        pushed = [0] * n_threads
        taken = [0] * n_threads
        barrier = threading.Barrier(n_threads)

        def worker(wid):
            barrier.wait()
            order = [v for v in range(n_threads) if v != wid]
            for i in range(per_thread):
                r = (i * 2654435761 + wid) % 3
                if r == 0:
                    table.push(_task_at(place, wid))
                    pushed[wid] += 1
                elif r == 1:
                    if pd.pop_own(wid) is not None:
                        taken[wid] += 1
                else:
                    if pd.steal_from_others(wid, order) is not None:
                        taken[wid] += 1

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        _assert_occupancy_consistent(table)
        assert table.total_ready() == sum(pushed) - sum(taken)

    def test_quiescent_runtime_has_empty_occupancy(self, sim_rt):
        """End-to-end: after a full run drains, every mask and counter is 0."""
        sim_rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(200)]))
        for pd in sim_rt.deques._by_place_id.values():
            assert pd.mask == 0
            assert pd.ready == 0
        assert sim_rt.deques.total_ready() == 0

    def test_quiescent_threaded_runtime_has_empty_occupancy(self, threaded_rt):
        threaded_rt.run(lambda: finish(
            lambda: [async_(lambda: None) for _ in range(100)]))
        for pd in threaded_rt.deques._by_place_id.values():
            assert pd.mask == 0
            assert pd.ready == 0
        assert threaded_rt.deques.total_ready() == 0
