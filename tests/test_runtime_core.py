"""The generalized work-stealing runtime: spawning, finish, coroutine tasks,
deques, clocks, exceptions, and both executors on the same policy core."""

import numpy as np
import pytest

from repro.platform.hwloc import discover, machine
from repro.platform.place import PlaceType
from repro.exec.sim import SimExecutor
from repro.runtime.api import (
    async_,
    async_at,
    async_await,
    async_future,
    async_future_await,
    begin_finish,
    charge,
    end_finish,
    finish,
    forasync,
    forasync_chunked,
    forasync_future,
    now,
    timer_future,
)
from repro.runtime.finish import TaskGroupError
from repro.runtime.future import Promise
from repro.runtime.runtime import HiperRuntime
from repro.util.errors import (
    ConfigError,
    DeadlockError,
    HiperError,
    RuntimeStateError,
)


class TestSpawnBasics:
    def test_async_runs_side_effect(self, sim_rt):
        hits = []

        def main():
            finish(lambda: async_(lambda: hits.append(1)))
            return hits

        assert sim_rt.run(main) == [1]

    def test_async_future_returns_value(self, sim_rt):
        assert sim_rt.run(lambda: async_future(lambda: "v").get()) == "v"

    def test_async_at_targets_place(self, sim_rt):
        place_names = []

        def main():
            from repro.runtime.context import current_context
            gpu = sim_rt.model.first_of_type(PlaceType.GPU_MEM)

            def body():
                place_names.append(current_context().task.place.name)

            finish(lambda: async_at(body, gpu))

        sim_rt.run(main)
        assert place_names == ["gpu0"]

    def test_spawn_outside_task_without_scope_raises(self, sim_rt):
        with pytest.raises(RuntimeStateError, match="explicit scope"):
            sim_rt.spawn(lambda: None)

    def test_spawn_before_start_raises(self):
        ex = SimExecutor()
        model = discover(machine("workstation"), num_workers=1)
        rt = HiperRuntime(model, ex)
        with pytest.raises(RuntimeStateError, match="not started"):
            rt.spawn(lambda: None)

    def test_spawn_after_shutdown_raises(self, sim_rt):
        sim_rt.shutdown()
        with pytest.raises(RuntimeStateError, match="shutdown"):
            sim_rt.spawn(lambda: None)

    def test_foreign_place_rejected(self, sim_rt):
        other = discover(machine("workstation"))
        foreign = other.first_of_type(PlaceType.SYSTEM_MEM)

        def main():
            async_at(lambda: None, foreign)

        with pytest.raises(ConfigError, match="different model"):
            sim_rt.run(main)

    def test_negative_cost_rejected(self, sim_rt):
        def main():
            sim_rt.spawn(lambda: None, cost=-1.0)

        with pytest.raises(ValueError):
            sim_rt.run(main)

    def test_non_callable_body_rejected(self, sim_rt):
        def main():
            sim_rt.spawn(42)

        with pytest.raises(TypeError):
            sim_rt.run(main)


class TestFinish:
    def test_waits_for_transitive_tasks(self, sim_rt):
        hits = []

        def main():
            def outer():
                async_(lambda: hits.append("inner"))
                hits.append("outer")

            finish(lambda: async_(outer))
            return list(hits)

        result = sim_rt.run(main)
        assert sorted(result) == ["inner", "outer"]

    def test_nested_finish_ordering(self, sim_rt):
        log = []

        def main():
            def phase(tag, n):
                finish(lambda: [async_(lambda i=i: log.append((tag, i)))
                                for i in range(n)])
                log.append((tag, "joined"))

            phase("a", 3)
            phase("b", 2)

        sim_rt.run(main)
        a_join = log.index(("a", "joined"))
        assert all(log.index(("a", i)) < a_join for i in range(3))
        assert all(log.index(("b", i)) > a_join for i in range(2))

    def test_single_exception_propagates(self, sim_rt):
        def main():
            finish(lambda: async_(lambda: 1 / 0))

        with pytest.raises(ZeroDivisionError):
            sim_rt.run(main)

    def test_multiple_exceptions_grouped(self, sim_rt):
        def boom(i):
            raise ValueError(f"task{i}")

        def main():
            finish(lambda: [async_(lambda i=i: boom(i)) for i in range(3)])

        with pytest.raises(TaskGroupError, match="3 tasks failed"):
            sim_rt.run(main)

    def test_body_value_returned(self, sim_rt):
        assert sim_rt.run(lambda: finish(lambda: 99)) == 99

    def test_finish_body_exception_still_joins(self, sim_rt):
        hits = []

        def main():
            def body():
                async_(lambda: hits.append(1), cost=1e-3)
                raise RuntimeError("body fails")

            with pytest.raises(RuntimeError, match="body fails"):
                finish(body)
            return list(hits)

        # The spawned task still completed before finish unwound.
        assert sim_rt.run(main) == [1]


class TestCoroutineTasks:
    def test_yield_future_resumes_with_value(self, sim_rt):
        def main():
            def co():
                v = yield async_future(lambda: 21)
                return v * 2

            return async_future(co).get()

        assert sim_rt.run(main) == 42

    def test_yield_none_reschedules(self, sim_rt):
        steps = []

        def main():
            def co():
                steps.append("a")
                yield None
                steps.append("b")
                return "done"

            return async_future(co).get()

        assert sim_rt.run(main) == "done"
        assert steps == ["a", "b"]

    def test_yield_failed_future_throws_into_coroutine(self, sim_rt):
        def main():
            def co():
                try:
                    yield async_future(lambda: 1 / 0)
                except ZeroDivisionError:
                    return "caught"
                return "missed"

            return async_future(co).get()

        assert sim_rt.run(main) == "caught"

    def test_yield_garbage_rejected(self, sim_rt):
        def main():
            def co():
                yield "not a future"

            return async_future(co).get()

        with pytest.raises(HiperError, match="only Future or None"):
            sim_rt.run(main)

    def test_begin_end_finish_in_coroutine(self, sim_rt):
        out = []

        def main():
            def co():
                fs = begin_finish()
                forasync(8, lambda i: out.append(i))
                yield end_finish(fs)
                return sorted(out)

            return async_future(co).get()

        assert sim_rt.run(main) == list(range(8))

    def test_end_finish_carries_failures(self, sim_rt):
        def main():
            def co():
                fs = begin_finish()
                async_(lambda: 1 / 0)
                try:
                    yield end_finish(fs)
                except ZeroDivisionError:
                    return "propagated"
                return "missed"

            return async_future(co).get()

        assert sim_rt.run(main) == "propagated"

    def test_mismatched_end_finish_raises(self, sim_rt):
        def main():
            fs_outer = begin_finish()
            begin_finish()
            try:
                end_finish(fs_outer)  # wrong nesting
            finally:
                pass

        with pytest.raises(RuntimeStateError, match="nested"):
            sim_rt.run(main)


class TestAsyncAwait:
    def test_dependent_task_waits(self, sim_rt):
        order = []

        def main():
            def body():
                charge(1e-3)
                order.append("dep")
                return 5

            f = async_future(body)
            finish(lambda: async_await(lambda: order.append("after"), f))
            return order

        assert sim_rt.run(main) == ["dep", "after"]

    def test_await_multiple_futures(self, sim_rt):
        def main():
            fs = [async_future(lambda i=i: i, cost=1e-4 * (i + 1))
                  for i in range(3)]
            return async_future_await(
                lambda: sum(f.value() for f in fs), fs
            ).get()

        assert sim_rt.run(main) == 3

    def test_failed_dependency_fails_dependent(self, sim_rt):
        ran = []

        def main():
            bad = async_future(lambda: 1 / 0)
            f = async_future_await(lambda: ran.append(1), bad)
            with pytest.raises(ZeroDivisionError):
                f.get()
            return list(ran)

        assert sim_rt.run(main) == []

    def test_await_already_satisfied_future(self, sim_rt):
        from repro.runtime.future import satisfied_future

        def main():
            return async_future_await(lambda: "ok", satisfied_future()).get()

        assert sim_rt.run(main) == "ok"


class TestForasync:
    def test_covers_domain_exactly_once(self, sim_rt):
        seen = []

        def main():
            finish(lambda: forasync(17, lambda i: seen.append(i), chunks=5))

        sim_rt.run(main)
        assert sorted(seen) == list(range(17))

    def test_range_with_step(self, sim_rt):
        seen = []

        def main():
            finish(lambda: forasync(range(3, 20, 4), seen.append))

        sim_rt.run(main)
        assert sorted(seen) == [3, 7, 11, 15, 19]

    def test_chunked_form_gets_bounds(self, sim_rt):
        spans = []

        def main():
            finish(lambda: forasync_chunked(
                100, lambda lo, hi: spans.append((lo, hi)), chunks=7))

        sim_rt.run(main)
        assert sum(hi - lo for lo, hi in spans) == 100
        assert len(spans) == 7

    def test_empty_domain_is_noop(self, sim_rt):
        def main():
            finish(lambda: forasync(0, lambda i: 1 / 0))
            return "fine"

        assert sim_rt.run(main) == "fine"

    def test_forasync_future_joins_all(self, sim_rt):
        seen = []

        def main():
            f = forasync_future(10, lambda i: seen.append(i), cost_per_item=1e-4)
            f.wait()
            return len(seen)

        assert sim_rt.run(main) == 10

    def test_bad_domain_type(self, sim_rt):
        def main():
            forasync("abc", lambda i: None)

        with pytest.raises(ConfigError, match="domain"):
            sim_rt.run(main)

    def test_work_distributes_across_workers(self, sim_rt):
        def main():
            finish(lambda: forasync(64, lambda i: charge(1e-3), chunks=64))

        sim_rt.run(main)
        busy = [w.tasks_run for w in sim_rt.workers]
        assert sum(busy) >= 64
        # with 64 x 1ms tasks on 4 workers, nobody should sit fully idle
        assert all(b > 0 for b in busy)


class TestVirtualTime:
    def test_cost_advances_makespan(self, sim_rt):
        def main():
            finish(lambda: [async_(lambda: None, cost=2e-3) for _ in range(4)])

        sim_rt.run(main)
        # 4 tasks x 2ms over 4 workers -> ~2ms end-to-end
        assert sim_rt.executor.makespan() == pytest.approx(2e-3, rel=0.2)

    def test_serial_chain_accumulates(self, sim_rt1):
        def main():
            for _ in range(5):
                async_future(lambda: charge(1e-3)).wait()
            return now()

        assert sim_rt1.run(main) == pytest.approx(5e-3)

    def test_timer_future_fires_at_delay(self, sim_rt):
        def main():
            timer_future(7e-3).wait()
            return now()

        assert sim_rt.run(main) == pytest.approx(7e-3)

    def test_charge_outside_task_rejected(self, sim_rt):
        with pytest.raises(RuntimeStateError):
            charge(1.0)

    def test_negative_charge_rejected(self, sim_rt):
        def main():
            charge(-1e-3)

        with pytest.raises(ConfigError):
            sim_rt.run(main)

    def test_deterministic_makespan(self):
        def run_once():
            ex = SimExecutor()
            model = discover(machine("workstation"), num_workers=4)
            rt = HiperRuntime(model, ex, seed=7).start()

            def main():
                finish(lambda: forasync(
                    50, lambda i: charge(1e-4 * ((i % 5) + 1)), chunks=25))

            rt.run(main)
            return ex.makespan()

        assert run_once() == run_once()


class TestDeadlocks:
    def test_unsatisfiable_wait_detected(self, sim_rt):
        def main():
            Promise("never").get_future().wait()

        with pytest.raises(DeadlockError, match="never"):
            sim_rt.run(main)

    def test_deadlock_lists_blocked_entities(self, sim_rt):
        def main():
            Promise("the-culprit").get_future().wait()

        with pytest.raises(DeadlockError, match="the-culprit"):
            sim_rt.run(main)


class TestThreadedExecutor:
    def test_basic_spawn_and_finish(self, threaded_rt):
        hits = []

        def main():
            finish(lambda: [async_(lambda i=i: hits.append(i))
                            for i in range(20)])
            return sorted(hits)

        assert threaded_rt.run(main) == list(range(20))

    def test_future_wait(self, threaded_rt):
        def main():
            fs = [async_future(lambda i=i: i * i) for i in range(8)]
            return sum(f.get() for f in fs)

        assert threaded_rt.run(main) == sum(i * i for i in range(8))

    def test_coroutine_tasks(self, threaded_rt):
        def main():
            def co():
                a = yield async_future(lambda: 4)
                b = yield async_future(lambda: 5)
                return a * b

            return async_future(co).get()

        assert threaded_rt.run(main) == 20

    def test_real_parallel_numpy_work(self, threaded_rt):
        def main():
            def chunk(lo, hi):
                return float(np.arange(lo, hi, dtype=np.float64).sum())

            fs = [async_future(lambda i=i: chunk(i * 1000, (i + 1) * 1000))
                  for i in range(8)]
            return sum(f.get() for f in fs)

        assert threaded_rt.run(main) == float(np.arange(8000).sum())

    def test_exception_propagates(self, threaded_rt):
        def main():
            finish(lambda: async_(lambda: 1 / 0))

        with pytest.raises(ZeroDivisionError):
            threaded_rt.run(main)

    def test_second_runtime_rejected(self, threaded_rt):
        model = discover(machine("workstation"), num_workers=1)
        with pytest.raises(RuntimeStateError, match="exactly one"):
            HiperRuntime(model, threaded_rt.executor)


class TestStatsHooks:
    def test_task_counts_recorded(self, sim_rt):
        def main():
            finish(lambda: [async_(lambda: None) for _ in range(10)])

        sim_rt.run(main)
        assert sim_rt.stats.counter("core", "tasks_spawned") >= 10
        assert sim_rt.stats.counter("core", "tasks_completed") >= 10

    def test_steals_counted_under_imbalance(self, sim_rt):
        def main():
            # one producer spawns everything; other workers must steal
            finish(lambda: forasync(40, lambda i: charge(1e-4), chunks=40))

        sim_rt.run(main)
        assert sim_rt.stats.counter("core", "steal") > 0
