"""UTS: tree generation determinism and all three variants counting the
exact tree size under distributed load balancing."""

import pytest

from repro.apps.uts import (
    UtsConfig,
    child_count,
    children,
    pack,
    root_node,
    sequential_count,
    unpack,
    uts_main,
)
from repro.distrib import ClusterConfig, spmd_run
from repro.platform import machine
from repro.shmem import shmem_factory
from repro.util.errors import ConfigError


def run_uts(variant, cfg, nodes=4, workers=2):
    cluster = ClusterConfig(nodes=nodes, ranks_per_node=1,
                            workers_per_rank=workers,
                            machine=machine("titan"))
    return spmd_run(uts_main(variant, cfg), cluster,
                    module_factories=[shmem_factory()])


class TestTree:
    def test_root_children_exact(self):
        cfg = UtsConfig(root_children=17)
        assert child_count(cfg, root_node(cfg)) == 17

    def test_children_deterministic(self):
        cfg = UtsConfig()
        node = children(cfg, root_node(cfg))[3]
        assert children(cfg, node) == children(cfg, node)

    def test_distinct_children_states(self):
        cfg = UtsConfig(root_children=50)
        kids = children(cfg, root_node(cfg))
        states = {s for s, _ in kids}
        assert len(states) == 50

    def test_depth_cap_terminates(self):
        cfg = UtsConfig(max_depth=3)
        assert child_count(cfg, (12345, 3)) == 0

    def test_sequential_count_deterministic(self):
        cfg = UtsConfig(root_children=30, mean_children=0.7)
        assert sequential_count(cfg) == sequential_count(cfg)

    def test_expected_size_scales_with_mean(self):
        small = sequential_count(UtsConfig(root_children=50, mean_children=0.5))
        big = sequential_count(UtsConfig(root_children=50, mean_children=0.9))
        assert big > small

    def test_pack_unpack_round_trip(self):
        for node in [(0, 0), (2**63 + 5, 17), (2**64 - 1, 255)]:
            lane0, lane1 = pack(node)
            assert -(2**63) <= lane0 < 2**63
            assert unpack(lane0, lane1) == node

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            UtsConfig(mean_children=1.0)
        with pytest.raises(ConfigError):
            UtsConfig(root_children=0)
        with pytest.raises(ConfigError):
            UtsConfig(chunk=0)

    def test_unknown_variant(self):
        with pytest.raises(ConfigError, match="unknown UTS variant"):
            uts_main("cilk", UtsConfig())


class TestVariants:
    CFG = UtsConfig(root_children=120, mean_children=0.9, seed=11)

    @pytest.mark.parametrize("variant", ["hiper", "shmem_omp", "omp_tasks"])
    def test_counts_exact(self, variant):
        oracle = sequential_count(self.CFG)
        res = run_uts(variant, self.CFG, nodes=4)
        assert sum(res.results) == oracle

    @pytest.mark.parametrize("variant", ["hiper", "shmem_omp", "omp_tasks"])
    def test_single_rank(self, variant):
        oracle = sequential_count(self.CFG)
        res = run_uts(variant, self.CFG, nodes=1)
        assert res.results == [oracle]

    def test_work_actually_distributes(self):
        cfg = UtsConfig(root_children=600, mean_children=0.93, seed=3)
        res = run_uts("hiper", cfg, nodes=4, workers=4)
        assert sum(res.results) == sequential_count(cfg)
        assert sum(1 for r in res.results if r > 0) >= 2

    def test_deterministic_makespan(self):
        a = run_uts("hiper", self.CFG, nodes=2).makespan
        b = run_uts("hiper", self.CFG, nodes=2).makespan
        assert a == b


class TestTimingShape:
    def test_locked_stealing_slower_at_scale(self):
        """Fig. 7 shape: lock-based distributed balancing degrades relative
        to the lock-free HiPER variant as ranks multiply."""
        cfg = UtsConfig(root_children=800, mean_children=0.95, seed=7)
        hiper = run_uts("hiper", cfg, nodes=8, workers=4).makespan
        locked = run_uts("shmem_omp", cfg, nodes=8, workers=4).makespan
        assert locked > hiper
