"""OpenSHMEM module: symmetric heap, one-sided ops, atomics, wait-until,
shmem_async_when, collectives, locks."""

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.shmem import shmem_factory
from repro.shmem.heap import SymmetricHeap
from repro.util.errors import ConfigError, ShmemError


def run(main, nranks=4, workers=2, ranks_per_node=1, **mod_kwargs):
    cfg = ClusterConfig(nodes=nranks // ranks_per_node or 1,
                        ranks_per_node=ranks_per_node,
                        workers_per_rank=workers)
    return spmd_run(main, cfg, module_factories=[shmem_factory(**mod_kwargs)])


class TestSymmetricHeap:
    def test_allocation_symmetry_checked(self):
        shared = {}
        h0 = SymmetricHeap(0, shared)
        h1 = SymmetricHeap(1, shared)
        h0.allocate(8, np.int64)
        with pytest.raises(ShmemError, match="asymmetric"):
            h1.allocate(9, np.int64)

    def test_free_and_double_free(self):
        h = SymmetricHeap(0)
        a = h.allocate(4)
        h.free(a)
        with pytest.raises(ShmemError, match="double free"):
            h.free(a)

    def test_resolve_after_free_raises(self):
        h = SymmetricHeap(0)
        a = h.allocate(4)
        h.free(a)
        with pytest.raises(ShmemError, match="no symmetric allocation"):
            h.resolve(a.sym_id)

    def test_fill_value(self):
        h = SymmetricHeap(0)
        a = h.allocate(5, np.float64, fill=2.5)
        assert np.all(a.arr == 2.5)

    def test_indexing_passthrough(self):
        h = SymmetricHeap(0)
        a = h.allocate(5)
        a[2] = 9
        assert a[2] == 9 and a.size == 5


class TestPutGet:
    def test_put_visible_after_barrier(self):
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            dest = sh.malloc(n)
            yield sh.barrier_all_async()
            for pe in range(n):
                yield sh.put_async(dest, np.array([me + 1]), pe, offset=me)
            yield sh.barrier_all_async()
            return dest.arr.tolist()

        res = run(main)
        assert all(r == [1, 2, 3, 4] for r in res.results)

    def test_get_round_trip(self):
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            data = sh.malloc(4, np.float64)
            data.arr[:] = me * 1.5
            yield sh.barrier_all_async()
            got = yield sh.get_async(data, (me + 1) % n)
            return got.tolist()

        res = run(main)
        for r, got in enumerate(res.results):
            assert got == [((r + 1) % 4) * 1.5] * 4

    def test_put_out_of_bounds_rejected(self):
        def main(ctx):
            sh = ctx.shmem
            a = sh.malloc(4)
            yield sh.put_async(a, np.arange(10), 0)

        with pytest.raises(ConfigError, match="out of bounds"):
            run(main, nranks=2)

    def test_put_local_completion_allows_buffer_reuse(self):
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            tgt = sh.malloc(2)
            yield sh.barrier_all_async()
            buf = np.array([55, 66])
            f = sh.put_async(tgt, buf, (me + 1) % n)
            buf[:] = 0  # snapshot semantics
            yield f
            yield sh.barrier_all_async()
            return tgt.arr.tolist()

        res = run(main)
        assert all(r == [55, 66] for r in res.results)

    def test_quiet_waits_for_remote_completion(self):
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            tgt = sh.malloc(1)
            yield sh.barrier_all_async()
            if me == 0:
                yield sh.put_async(tgt, np.array([1]), 1)
                yield sh.quiet_async()
                # after quiet, the value is remotely visible: signal via 2nd put
                yield sh.put_async(tgt, np.array([2]), 1, offset=0)
            if me == 1:
                yield sh.wait_until_async(tgt, "eq", 2)
                return int(tgt.arr[0])
            yield sh.barrier_all_async()  # others
            return None

        # ranks 0/1 skip the final barrier; run with exactly 2 ranks
        def main2(ctx):
            sh = ctx.shmem
            me = ctx.rank
            tgt = sh.malloc(1)
            yield sh.barrier_all_async()
            if me == 0:
                yield sh.put_async(tgt, np.array([1]), 1)
                yield sh.quiet_async()
                yield sh.put_async(tgt, np.array([2]), 1, offset=0)
                yield sh.quiet_async()
                return None
            yield sh.wait_until_async(tgt, "eq", 2)
            return int(tgt.arr[0])

        res = run(main2, nranks=2)
        assert res.results[1] == 2


class TestAtomics:
    def test_fetch_add_serializes(self):
        def main(ctx):
            sh = ctx.shmem
            counter = sh.malloc(1)
            yield sh.barrier_all_async()
            olds = []
            for _ in range(3):
                old = yield sh.atomic_fetch_add_async(counter, 1, 0)
                olds.append(old)
            yield sh.barrier_all_async()
            if ctx.rank == 0:
                assert counter.arr[0] == 3 * ctx.nranks
            return olds

        res = run(main)
        # all fetched values across ranks are distinct
        all_olds = [v for r in res.results for v in r]
        assert sorted(all_olds) == list(range(12))

    def test_fetch_inc(self):
        def main(ctx):
            sh = ctx.shmem
            c = sh.malloc(1)
            yield sh.barrier_all_async()
            old = yield sh.atomic_fetch_inc_async(c, 0)
            yield sh.barrier_all_async()
            return old

        res = run(main)
        assert sorted(res.results) == [0, 1, 2, 3]

    def test_compare_swap_only_one_wins(self):
        def main(ctx):
            sh = ctx.shmem
            flag = sh.malloc(1)
            yield sh.barrier_all_async()
            old = yield sh.atomic_compare_swap_async(flag, 0, ctx.rank + 1, 0)
            yield sh.barrier_all_async()
            return old == 0  # True iff this rank won

        res = run(main)
        assert sum(res.results) == 1

    def test_swap(self):
        def main(ctx):
            sh = ctx.shmem
            v = sh.malloc(1)
            yield sh.barrier_all_async()
            if ctx.rank == 1:
                old = yield sh.atomic_swap_async(v, 42, 0)
                return old
            yield sh.barrier_all_async() if False else sh.barrier_all_async()
            return None

        # simpler deterministic variant
        def main2(ctx):
            sh = ctx.shmem
            v = sh.malloc(1, fill=7)
            yield sh.barrier_all_async()
            if ctx.rank == 1:
                old = yield sh.atomic_swap_async(v, 42, 0)
                assert old == 7
            yield sh.barrier_all_async()
            if ctx.rank == 0:
                return int(v.arr[0])
            return None

        res = run(main2, nranks=2)
        assert res.results[0] == 42

    def test_unknown_amo_rejected(self):
        def main(ctx):
            sh = ctx.shmem
            v = sh.malloc(1)
            sh.backend.amo("xor", v, 0, 0, operand=1)

        with pytest.raises(ConfigError, match="unknown atomic"):
            run(main, nranks=2)


class TestWaitAndAsyncWhen:
    def test_wait_until_released_by_remote_put(self):
        def main(ctx):
            sh = ctx.shmem
            me = ctx.rank
            sig = sh.malloc(1)
            yield sh.barrier_all_async()
            if me == 0:
                from repro.runtime.api import charge
                charge(2e-3)
                yield sh.put_async(sig, np.array([99]), 1)
                return None
            if me == 1:
                yield sh.wait_until_async(sig, "ge", 99)
                from repro.runtime.api import now
                return now() >= 2e-3
            return None

        res = run(main, nranks=2)
        assert res.results[1] is True

    def test_async_when_runs_body_on_condition(self):
        def main(ctx):
            sh = ctx.shmem
            me, n = ctx.rank, ctx.nranks
            sig = sh.malloc(1)
            hits = []
            f = sh.async_when(sig, "eq", 7, lambda: hits.append(me))
            yield sh.barrier_all_async()
            yield sh.put_async(sig, np.array([7]), (me + 1) % n)
            yield f
            return hits

        res = run(main)
        assert res.results == [[0], [1], [2], [3]]

    def test_async_when_immediate_if_already_true(self):
        def main(ctx):
            sh = ctx.shmem
            sig = sh.malloc(1, fill=5)
            f = sh.async_when(sig, "eq", 5, lambda: "ran")
            v = yield f
            return v

        res = run(main, nranks=1, workers=1)
        assert res.results == ["ran"]

    def test_local_store_wakes_watchers(self):
        def main(ctx):
            sh = ctx.shmem
            sig = sh.malloc(1)
            f = sh.wait_until_async(sig, "eq", 3)
            sh.local_store(sig, 0, 3)
            yield f
            return True

        res = run(main, nranks=1, workers=1)
        assert res.results == [True]

    def test_bad_comparison_rejected(self):
        def main(ctx):
            sh = ctx.shmem
            sig = sh.malloc(1)
            sh.wait_until_async(sig, "spaceship", 0)

        with pytest.raises(ConfigError, match="comparison"):
            run(main, nranks=1, workers=1)


class TestCollectivesAndLocks:
    def test_reductions(self):
        def main(ctx):
            sh = ctx.shmem
            s = yield sh.reduce_async(ctx.rank + 1, lambda a, b: a + b)
            m = yield sh.reduce_async(ctx.rank, lambda a, b: max(a, b))
            return (s, m)

        res = run(main)
        assert all(r == (10, 3) for r in res.results)

    def test_fcollect(self):
        def main(ctx):
            vals = yield ctx.shmem.fcollect_async(ctx.rank * 2 + 1)
            return vals

        res = run(main)
        assert all(r == [1, 3, 5, 7] for r in res.results)

    def test_broadcast(self):
        def main(ctx):
            v = yield ctx.shmem.broadcast_async(
                "gold" if ctx.rank == 1 else None, root=1)
            return v

        res = run(main, nranks=3)
        assert res.results == ["gold"] * 3

    def test_alltoall(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            got = yield ctx.shmem.alltoall_async([me * n + d for d in range(n)])
            return got

        res = run(main)
        for r, got in enumerate(res.results):
            assert got == [s * 4 + r for s in range(4)]

    def test_lock_mutual_exclusion_counter(self):
        def main(ctx):
            sh = ctx.shmem
            lock = sh.malloc(1)
            val = sh.malloc(1)
            yield sh.barrier_all_async()
            for _ in range(2):
                yield sh.set_lock_async(lock)
                v = yield sh.get_async(val, 0)
                yield sh.put_async(val, np.array([v[0] + 1]), 0)
                yield sh.quiet_async()
                yield sh.clear_lock_async(lock)
            yield sh.barrier_all_async()
            return int((yield sh.get_async(val, 0))[0])

        res = run(main)
        assert all(r == 8 for r in res.results)

    def test_finalize_with_unquieted_puts_raises(self):
        def main(ctx):
            sh = ctx.shmem
            tgt = sh.malloc(1)
            yield sh.barrier_all_async()
            # issue a put and return without quiet on rank 0... but the
            # engine drains deliveries before shutdown, so force the error
            # path directly instead:
            sh.backend._outstanding += 1
            return None

        with pytest.raises(ShmemError, match="un-quieted"):
            run(main, nranks=2)
