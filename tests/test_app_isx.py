"""ISx integer sort: router math, all variants validated, timing shape."""

import numpy as np
import pytest

from repro.apps.isx import (
    IsxConfig,
    bucket_width,
    generate_keys,
    isx_main,
    local_sort,
    route_keys,
    validate_isx,
)
from repro.distrib import ClusterConfig, spmd_run
from repro.platform import machine
from repro.shmem import shmem_factory
from repro.util.errors import ConfigError


def run_isx(variant, cfg, nodes=2, ranks_per_node=1, workers=4, direct=False):
    cluster = ClusterConfig(nodes=nodes, ranks_per_node=ranks_per_node,
                            workers_per_rank=workers,
                            machine=machine("titan"))
    return spmd_run(isx_main(variant, cfg), cluster,
                    module_factories=[shmem_factory(direct=direct)])


class TestRouting:
    def test_bucket_width_covers_key_space(self):
        cfg = IsxConfig(max_key=1000)
        for npes in (1, 3, 7, 16):
            w = bucket_width(cfg, npes)
            assert w * npes >= cfg.max_key

    def test_route_groups_by_target(self):
        cfg = IsxConfig(keys_per_pe=100, max_key=100)
        keys = generate_keys(cfg, 0, 4)
        grouped, counts = route_keys(cfg, 4, keys)
        assert counts.sum() == keys.size
        w = bucket_width(cfg, 4)
        offset = 0
        for pe in range(4):
            block = grouped[offset : offset + counts[pe]]
            assert np.all(block // w == pe)
            offset += counts[pe]

    def test_route_preserves_multiset(self):
        cfg = IsxConfig(keys_per_pe=500)
        keys = generate_keys(cfg, 2, 4)
        grouped, _ = route_keys(cfg, 4, keys)
        assert np.array_equal(np.sort(grouped), np.sort(keys))

    def test_keys_deterministic(self):
        cfg = IsxConfig(keys_per_pe=64)
        assert np.array_equal(generate_keys(cfg, 3, 8),
                              generate_keys(cfg, 3, 8))

    def test_local_sort(self):
        arr = np.array([5, 1, 3], dtype=np.int64)
        assert local_sort(arr).tolist() == [1, 3, 5]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            IsxConfig(keys_per_pe=0)
        with pytest.raises(ConfigError):
            IsxConfig(max_key=1)

    def test_validator_catches_unsorted(self):
        cfg = IsxConfig(keys_per_pe=4, max_key=64)
        w = bucket_width(cfg, 2)
        bad = [np.array([w - 1, 0], dtype=np.int64),
               np.array([w, w + 1, w + 2, w + 3, w + 4, w + 5],
                        dtype=np.int64)]
        with pytest.raises(AssertionError, match="not sorted"):
            validate_isx(cfg, 2, bad)

    def test_validator_catches_wrong_range(self):
        cfg = IsxConfig(keys_per_pe=2, max_key=64)
        w = bucket_width(cfg, 2)
        bad = [np.array([0, w], dtype=np.int64),
               np.array([w, w], dtype=np.int64)]
        with pytest.raises(AssertionError, match="bucket range"):
            validate_isx(cfg, 2, bad)


class TestVariants:
    @pytest.mark.parametrize("variant,direct,rpn,workers", [
        ("flat", True, 4, 1),
        ("hybrid", False, 1, 4),
        ("hiper", False, 1, 4),
    ])
    def test_sorts_correctly(self, variant, direct, rpn, workers):
        cfg = IsxConfig(keys_per_pe=1500)
        res = run_isx(variant, cfg, nodes=2, ranks_per_node=rpn,
                      workers=workers, direct=direct)
        validate_isx(cfg, res.nranks, res.results)

    def test_single_pe(self):
        cfg = IsxConfig(keys_per_pe=300)
        res = run_isx("flat", cfg, nodes=1, ranks_per_node=1, workers=1,
                      direct=True)
        validate_isx(cfg, 1, res.results)

    def test_skewed_slack_overflow_detected(self):
        # only two distinct keys across four PEs: PEs 0 and 1 receive
        # double their window capacity
        cfg = IsxConfig(keys_per_pe=4000, max_key=2, slack=1.01)
        with pytest.raises(ConfigError, match="window overflow"):
            run_isx("flat", cfg, nodes=2, ranks_per_node=2, workers=1,
                    direct=True)

    def test_unknown_variant(self):
        with pytest.raises(ConfigError, match="unknown ISx variant"):
            isx_main("radix", IsxConfig())


class TestTimingShape:
    def test_flat_competitive_at_small_scale(self):
        """Fig. 5 left side: flat OpenSHMEM is competitive at small node
        counts. Workloads are equalized per node: a hybrid PE holds
        cores-per-node times the keys of a flat PE."""
        flat_cfg = IsxConfig(keys_per_pe=1 << 12)
        hybrid_cfg = IsxConfig(keys_per_pe=4 << 12)
        flat = run_isx("flat", flat_cfg, nodes=2, ranks_per_node=4, workers=1,
                       direct=True)
        hybrid = run_isx("hybrid", hybrid_cfg, nodes=2, ranks_per_node=1,
                         workers=4)
        assert flat.makespan < hybrid.makespan * 2.0

    def test_flat_message_count_explodes_with_ranks(self):
        """The mechanism of the Fig. 5 collapse: message count scales with
        (cores x nodes)^2 for flat vs nodes^2 for hybrid."""
        cfg = IsxConfig(keys_per_pe=1 << 10)
        flat = run_isx("flat", cfg, nodes=4, ranks_per_node=4, workers=1,
                       direct=True)
        hybrid = run_isx("hybrid", cfg, nodes=4, ranks_per_node=1, workers=4)
        assert flat.fabric.messages_sent > 4 * hybrid.fabric.messages_sent
