"""Synthetic hwloc discovery and pop/steal path policies."""

import pytest

from repro.platform.hwloc import MACHINES, GpuSpec, MachineSpec, discover, machine
from repro.platform.paths import (
    WorkerPaths,
    custom_paths,
    dedicated_comm_paths,
    default_paths,
    flat_paths,
    make_paths,
)
from repro.platform.place import PlaceType
from repro.util.errors import ConfigError


class TestMachineSpecs:
    def test_known_machines_present(self):
        assert {"edison", "titan", "workstation"} <= set(MACHINES)

    def test_edison_core_count(self):
        assert machine("edison").cores == 24

    def test_titan_has_gpu(self):
        spec = machine("titan")
        assert spec.gpus == 1
        assert spec.gpu is not None and spec.gpu.flops > 1e12

    def test_unknown_machine_raises(self):
        with pytest.raises(ConfigError, match="known machines"):
            machine("summit")

    def test_gpu_spec_defaulted_when_gpus_positive(self):
        spec = MachineSpec(name="x", gpus=2)
        assert isinstance(spec.gpu, GpuSpec)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="x", sockets=0)


class TestDiscover:
    def test_flat_detail_place_set(self):
        m = discover(machine("workstation"), detail="flat")
        kinds = {p.kind for p in m}
        assert kinds == {PlaceType.SYSTEM_MEM, PlaceType.GPU_MEM,
                         PlaceType.INTERCONNECT}

    def test_numa_detail_has_l3_per_socket(self):
        m = discover(machine("edison"), detail="numa")
        assert len(m.places_of_type(PlaceType.L3_CACHE)) == 2

    def test_full_detail_has_l1_l2_per_core(self):
        spec = machine("workstation")
        m = discover(spec, detail="full")
        assert len(m.places_of_type(PlaceType.L1_CACHE)) == spec.cores
        assert len(m.places_of_type(PlaceType.L2_CACHE)) == spec.cores

    def test_default_workers_equal_cores(self):
        m = discover(machine("titan"))
        assert m.num_workers == machine("titan").cores

    def test_worker_override(self):
        m = discover(machine("titan"), num_workers=3)
        assert m.num_workers == 3

    def test_no_interconnect_option(self):
        m = discover(machine("workstation"), with_interconnect=False)
        assert not m.has_type(PlaceType.INTERCONNECT)

    def test_nvm_and_disk_places(self):
        spec = MachineSpec(name="x", nvm_bytes=1 << 30, disks=2)
        m = discover(spec)
        assert m.has_type(PlaceType.NVM)
        assert len(m.places_of_type(PlaceType.DISK)) == 2

    def test_discovered_model_validates(self):
        for name in MACHINES:
            for detail in ("flat", "numa", "full"):
                discover(machine(name), detail=detail).validate()

    def test_bad_detail_rejected(self):
        with pytest.raises(ConfigError, match="detail"):
            discover(machine("workstation"), detail="ultra")


class TestDefaultPaths:
    def test_only_comm_worker_sees_interconnect(self):
        m = discover(machine("workstation"), num_workers=4)
        paths = default_paths(m)
        nic = m.first_of_type(PlaceType.INTERCONNECT)
        assert paths.workers_covering(nic) == [0]

    def test_comm_worker_configurable(self):
        m = discover(machine("workstation"), num_workers=4)
        paths = default_paths(m, comm_worker=2)
        nic = m.first_of_type(PlaceType.INTERCONNECT)
        assert paths.workers_covering(nic) == [2]

    def test_every_worker_reaches_sysmem_and_gpu(self):
        m = discover(machine("titan"), num_workers=4)
        paths = default_paths(m)
        for w in range(4):
            kinds = {p.kind for p in paths.pop[w]}
            assert PlaceType.SYSTEM_MEM in kinds
            assert PlaceType.GPU_MEM in kinds

    def test_full_detail_pop_path_starts_at_own_l1(self):
        m = discover(machine("workstation"), detail="full")
        paths = default_paths(m)
        for w in range(m.num_workers):
            assert paths.pop[w][0].name == f"core{w}.l1"

    def test_validates_against_model(self):
        m = discover(machine("workstation"), num_workers=4)
        default_paths(m).validate(m)


class TestOtherPolicies:
    def test_flat_paths_minimal(self):
        m = discover(machine("edison"), num_workers=4, detail="numa")
        paths = flat_paths(m)
        # no cache places on any path
        for w in range(4):
            assert all(p.kind is not PlaceType.L3_CACHE for p in paths.pop[w])

    def test_dedicated_comm_worker_only_sees_interconnect(self):
        m = discover(machine("workstation"), num_workers=4)
        paths = dedicated_comm_paths(m)
        assert [p.kind for p in paths.pop[0]] == [PlaceType.INTERCONNECT]
        nic = m.first_of_type(PlaceType.INTERCONNECT)
        assert paths.workers_covering(nic) == [0]

    def test_dedicated_requires_interconnect(self):
        m = discover(machine("workstation"), with_interconnect=False)
        with pytest.raises(ConfigError):
            dedicated_comm_paths(m)

    def test_make_paths_by_name(self):
        m = discover(machine("workstation"), num_workers=2)
        assert make_paths(m, "default").num_workers == 2
        with pytest.raises(ConfigError, match="unknown path policy"):
            make_paths(m, "bogus")

    def test_custom_paths_from_names(self):
        m = discover(machine("workstation"), num_workers=2, detail="flat")
        paths = custom_paths(
            m,
            [["sysmem", "interconnect"], ["sysmem", "gpu0"]],
            [["sysmem"], ["sysmem", "gpu0"]],
        )
        paths.validate(m)
        assert paths.pop[0][1].kind is PlaceType.INTERCONNECT

    def test_custom_paths_worker_count_mismatch(self):
        m = discover(machine("workstation"), num_workers=3)
        with pytest.raises(ConfigError, match="workers"):
            custom_paths(m, [["sysmem"]], [["sysmem"]])

    def test_uncovered_place_rejected(self):
        m = discover(machine("workstation"), num_workers=1)
        paths = WorkerPaths([[m.place("sysmem")]], [[m.place("sysmem")]])
        with pytest.raises(ConfigError, match="no worker"):
            paths.validate(m)

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            WorkerPaths([[]], [[]])

    def test_mismatched_pop_steal_lengths(self):
        m = discover(machine("workstation"), num_workers=1)
        with pytest.raises(ConfigError, match="equal length"):
            WorkerPaths([[m.place("sysmem")]], [])
