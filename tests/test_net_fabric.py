"""Network cost model, fabric timing/ordering, and the protocol mux."""

import pytest

from repro.exec.sim import SimExecutor
from repro.net.costmodel import NETWORKS, NetworkModel, network
from repro.net.fabric import SimFabric
from repro.net.mux import FabricMux
from repro.util.errors import CommError, ConfigError


def make_fabric(nranks=4, ranks_per_node=1, net=None):
    ex = SimExecutor()
    fab = SimFabric(ex, nranks, net or NetworkModel(), ranks_per_node=ranks_per_node)
    return ex, fab


class TestNetworkModel:
    def test_known_networks(self):
        assert {"aries", "gemini", "generic"} <= set(NETWORKS)
        assert network("gemini").bandwidth < network("aries").bandwidth

    def test_unknown_network_raises(self):
        with pytest.raises(ConfigError):
            network("infiniband7")

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigError):
            NetworkModel(latency=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            NetworkModel(bandwidth=0.0)

    def test_serialization_time_scales_with_bytes(self):
        net = NetworkModel(bandwidth=1e9, inj_overhead=1e-6)
        assert net.serialization_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_intra_node_cheaper_than_inter(self):
        net = NetworkModel()
        n = 1 << 20
        inter = 2 * net.serialization_time(n) + net.latency
        assert net.intra_node_time(n) < inter


class TestFabricDelivery:
    def test_basic_delivery_time(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9, inj_overhead=1e-6)
        ex, fab = make_fabric(net=net)
        seen = []
        fab.register_sink(1, lambda src, p, t: seen.append((src, p, t)))
        fab.transmit(0, 1, 1000, "hello")
        ex.drain()
        assert len(seen) == 1
        src, payload, t = seen[0]
        assert (src, payload) == (0, "hello")
        # tx ser + latency + rx ser
        assert t == pytest.approx(2 * (1e-6 + 1e-6) + 1e-6)

    def test_pairwise_fifo_order(self):
        ex, fab = make_fabric()
        seen = []
        fab.register_sink(1, lambda src, p, t: seen.append(p))
        for i in range(10):
            # shrinking sizes would tempt later messages to overtake
            fab.transmit(0, 1, 10_000 - i * 1000, i)
        ex.drain()
        assert seen == list(range(10))

    def test_intra_node_skips_nic(self):
        net = NetworkModel(latency=1e-3, intra_latency=1e-7)
        ex, fab = make_fabric(nranks=4, ranks_per_node=2, net=net)
        times = {}
        fab.register_sink(1, lambda s, p, t: times.__setitem__("intra", t))
        fab.register_sink(2, lambda s, p, t: times.__setitem__("inter", t))
        fab.transmit(0, 1, 100, "x")  # same node
        fab.transmit(0, 2, 100, "y")  # crosses nodes
        ex.drain()
        assert times["intra"] < 1e-5 < times["inter"]

    def test_self_send_immediate(self):
        ex, fab = make_fabric()
        seen = []
        fab.register_sink(0, lambda s, p, t: seen.append(t))
        fab.transmit(0, 0, 1 << 20, "self")
        ex.drain()
        assert seen == [0.0]

    def test_nic_incast_serializes(self):
        """Many senders to one node: deliveries spread by rx serialization."""
        net = NetworkModel(latency=0.0, bandwidth=1e9, inj_overhead=1e-6)
        ex, fab = make_fabric(nranks=9, net=net)
        times = []
        fab.register_sink(0, lambda s, p, t: times.append(t))
        for src in range(1, 9):
            fab.transmit(src, 0, 0, src)
        ex.drain()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(1e-6) for g in gaps)

    def test_injection_callback_before_delivery(self):
        ex, fab = make_fabric()
        events = []
        fab.register_sink(1, lambda s, p, t: events.append(("deliver", t)))
        fab.transmit(0, 1, 1 << 16, "m",
                     on_injected=lambda t: events.append(("inject", t)))
        ex.drain()
        assert events[0][0] == "inject" and events[1][0] == "deliver"
        assert events[0][1] < events[1][1]

    def test_message_and_byte_counters(self):
        ex, fab = make_fabric()
        fab.register_sink(1, lambda s, p, t: None)
        fab.transmit(0, 1, 500, "a")
        fab.transmit(0, 1, 700, "b")
        assert fab.messages_sent == 2
        assert fab.bytes_sent == 1200

    def test_missing_sink_raises(self):
        ex, fab = make_fabric()
        with pytest.raises(CommError, match="no registered message sink"):
            fab.transmit(0, 2, 10, "x")

    def test_duplicate_sink_rejected(self):
        ex, fab = make_fabric()
        fab.register_sink(0, lambda s, p, t: None)
        with pytest.raises(CommError, match="already"):
            fab.register_sink(0, lambda s, p, t: None)

    def test_rank_bounds_checked(self):
        ex, fab = make_fabric()
        with pytest.raises(CommError, match="out of range"):
            fab.transmit(0, 99, 10, "x")
        with pytest.raises(CommError, match="negative"):
            fab.register_sink(1, lambda s, p, t: None) or \
                fab.transmit(0, 1, -5, "x")

    def test_node_mapping(self):
        ex, fab = make_fabric(nranks=8, ranks_per_node=4)
        assert fab.nnodes == 2
        assert fab.node_of(3) == 0 and fab.node_of(4) == 1


class TestMux:
    def test_channels_dispatch_independently(self):
        ex, fab = make_fabric(nranks=2)
        got = {"a": [], "b": []}
        m0 = FabricMux(fab, 0)
        m1 = FabricMux(fab, 1)
        m1.register_channel("a", lambda s, p, t: got["a"].append(p))
        m1.register_channel("b", lambda s, p, t: got["b"].append(p))
        m0.register_channel("a", lambda s, p, t: None)
        m0.register_channel("b", lambda s, p, t: None)
        m0.transmit(1, "a", "to-a", 10)
        m0.transmit(1, "b", "to-b", 10)
        ex.drain()
        assert got == {"a": ["to-a"], "b": ["to-b"]}

    def test_unknown_channel_send_rejected(self):
        ex, fab = make_fabric(nranks=2)
        m0 = FabricMux(fab, 0)
        with pytest.raises(CommError, match="unregistered"):
            m0.transmit(1, "ghost", "x", 1)

    def test_duplicate_channel_rejected(self):
        ex, fab = make_fabric(nranks=2)
        m0 = FabricMux(fab, 0)
        m0.register_channel("a", lambda s, p, t: None)
        with pytest.raises(CommError, match="already"):
            m0.register_channel("a", lambda s, p, t: None)


class TestFabricFaultErrorPaths:
    """ISSUE 'resilience' satellite (d): fabric/mux error paths."""

    def test_oversized_payload_rejected(self):
        ex = SimExecutor()
        fab = SimFabric(ex, 2, NetworkModel(), max_message_bytes=512)
        fab.register_sink(1, lambda s, p, t: None)
        fab.transmit(0, 1, 512, "at-the-limit")
        with pytest.raises(CommError, match="exceeds fabric limit"):
            fab.transmit(0, 1, 513, "over")

    def test_no_limit_by_default(self):
        ex, fab = make_fabric()
        fab.register_sink(1, lambda s, p, t: None)
        fab.transmit(0, 1, 1 << 30, "huge")  # unlimited unless configured

    def test_invalid_limit_rejected(self):
        ex = SimExecutor()
        with pytest.raises(ConfigError, match="max_message_bytes"):
            SimFabric(ex, 2, NetworkModel(), max_message_bytes=0)

    def test_receive_on_unregistered_channel_raises(self):
        ex, fab = make_fabric(nranks=2)
        m0 = FabricMux(fab, 0)
        m1 = FabricMux(fab, 1)
        m0.register_channel("only-on-sender", lambda s, p, t: None)
        m0.transmit(1, "only-on-sender", "x", 8)
        with pytest.raises(CommError, match="unregistered channel"):
            ex.drain()

    def test_retry_policy_requires_registered_channel(self):
        ex, fab = make_fabric(nranks=2)
        m0 = FabricMux(fab, 0)
        with pytest.raises(CommError, match="unregistered"):
            m0.set_retry_policy("nope", object())

    def test_fault_hook_exception_propagates_to_sender(self):
        ex, fab = make_fabric(nranks=2)
        fab.register_sink(1, lambda s, p, t: None)

        def broken_hook(src, dst, nbytes, payload):
            raise RuntimeError("hook bug")

        fab.fault_hook = broken_hook
        with pytest.raises(RuntimeError, match="hook bug"):
            fab.transmit(0, 1, 8, "x")
