"""Unified observability layer: metrics registry, telemetry sampling,
interval-merged utilization, enriched Chrome-trace export, comm accounting,
the profiling harness, and the accounting bugfixes that motivated it."""

import json
import sys

import numpy as np
import pytest

from repro.distrib import ClusterConfig, spmd_run
from repro.exec.sim import SimExecutor
from repro.mpi import mpi_factory
from repro.platform import discover, machine
from repro.runtime.api import charge, finish, forasync, timer_future
from repro.runtime.deques import PlaceDeques
from repro.runtime.future import Promise
from repro.runtime.polling import PollingService
from repro.runtime.runtime import HiperRuntime
from repro.tools import TraceRecorder, merge_intervals, profile_spmd, telemetry_factory
from repro.util.stats import Histogram, RuntimeStats, TelemetrySampler


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_gauges_keep_last_value(self):
        s = RuntimeStats()
        s.gauge("shmem", "heap_used", 100.0)
        s.gauge("shmem", "heap_used", 50.0)
        assert s.gauge_value("shmem", "heap_used") == 50.0
        assert s.gauge_value("shmem", "missing", -1.0) == -1.0

    def test_histogram_log2_buckets(self):
        h = Histogram()
        for v in (0, 1, 2, 3, 1024):
            h.add(v)
        assert h.n == 5
        assert h.counts[0] == 1        # the zero
        assert h.counts[1] == 1        # 1
        assert h.counts[2] == 2        # 2, 3
        assert h.counts[11] == 1       # 1024
        assert h.mean == pytest.approx(1030 / 5)
        assert h.max == 1024

    def test_histogram_merge_is_additive(self):
        a, b = Histogram(), Histogram()
        a.add(4)
        b.add(4)
        b.add(100)
        a.merge(b)
        assert a.n == 3 and a.counts[3] == 2 and a.max == 100

    def test_observe_fills_histogram(self):
        s = RuntimeStats()
        s.observe("mpi", "msg_size", 64)
        s.observe("mpi", "msg_size", 4096)
        h = s.histogram("mpi", "msg_size")
        assert h.n == 2 and h.max == 4096

    def test_merge_across_ranks(self):
        a, b = RuntimeStats(), RuntimeStats()
        a.count("mpi", "msgs_sent", 2)
        b.count("mpi", "msgs_sent", 3)
        a.gauge("shmem", "heap_used", 10.0)
        b.gauge("shmem", "heap_used", 30.0)
        a.observe("mpi", "msg_size", 8)
        b.observe("mpi", "msg_size", 8)
        a.sample("ready_tasks", 2.0, 1.0)
        b.sample("ready_tasks", 1.0, 4.0)
        a.merge(b)
        assert a.counter("mpi", "msgs_sent") == 5
        assert a.gauge_value("shmem", "heap_used") == 30.0  # max across ranks
        assert a.histogram("mpi", "msg_size").n == 2
        # series are concatenated and kept time-sorted
        assert a.series["ready_tasks"] == [(1.0, 4.0), (2.0, 1.0)]

    def test_to_dict_round_trips_through_json(self):
        s = RuntimeStats()
        s.count("core", "pop", 7)
        s.time("mpi", "send", 0.5)
        s.gauge("cuda", "mem_used", 42.0)
        s.observe("mpi", "msg_size", 128)
        s.sample("ready_tasks", 0.1, 3.0)
        s.worker_activity(0, busy=1.0, idle=0.25)
        d = json.loads(json.dumps(s.to_dict()))
        assert d["counters"]["core.pop"] == 7
        assert d["timers"]["mpi.send"]["total"] == 0.5
        assert d["gauges"]["cuda.mem_used"] == 42.0
        assert d["histograms"]["mpi.msg_size"]["n"] == 1
        assert d["series"]["ready_tasks"] == [[0.1, 3.0]]
        assert d["worker_busy"]["0"] == 1.0

    def test_disabled_stats_skip_new_kinds(self):
        from repro.util.stats import StatsConfig

        s = RuntimeStats(StatsConfig(enabled=False))
        s.gauge("m", "g", 1.0)
        s.observe("m", "h", 1.0)
        s.sample("series", 0.0, 1.0)
        assert not s.gauges and not s.histograms and not s.series


# ---------------------------------------------------------------------------
# interval merging / utilization (satellite: nested help-first segments)
# ---------------------------------------------------------------------------
class TestIntervalMerging:
    def test_merge_intervals_union(self):
        assert merge_intervals([]) == 0.0
        assert merge_intervals([(0, 1), (2, 3)]) == 2.0        # disjoint
        assert merge_intervals([(0, 2), (1, 3)]) == 3.0        # overlapping
        assert merge_intervals([(0, 10), (2, 3), (4, 5)]) == 10.0  # nested
        assert merge_intervals([(5, 6), (0, 1)]) == 2.0        # unsorted

    def test_nested_blocking_utilization_le_one(self):
        """Regression: a blocking task that helps a child used to have its
        outer segment double-counted with the child's, pushing utilization
        past 1."""
        ex = SimExecutor()
        tracer = TraceRecorder()
        ex.attach_tracer(tracer)
        model = discover(machine("workstation"), num_workers=1)
        rt = HiperRuntime(model, ex).start()

        def main():
            def child():
                charge(1e-3)

            # finish() blocks; the single worker helps the child, so the
            # child's segment nests inside the blocked task's segment.
            finish(lambda: (rt.spawn(child), charge(2e-4)))

        rt.run(main)
        raw = sum(ev.duration for ev in tracer.events)
        busy = sum(tracer.worker_busy().values())
        assert raw > busy  # nesting really happened
        u = tracer.utilization(ex.makespan())
        assert 0.0 < u <= 1.0
        rt.shutdown()
        ex.shutdown()


# ---------------------------------------------------------------------------
# telemetry sampler
# ---------------------------------------------------------------------------
class TestTelemetrySampler:
    def test_sampler_records_series(self, sim_rt):
        sampler = TelemetrySampler(sim_rt, period=1e-4, max_samples=64)

        def main():
            sampler.start()
            finish(lambda: forasync(16, lambda i: charge(2e-4), chunks=16))
            sampler.stop()

        sim_rt.run(main)
        series = sim_rt.stats.series
        for name in ("ready_tasks", "event_queue", "pop_rate", "steal_rate",
                     "idle_fraction", "events_per_sec"):
            assert series[name], name
        assert all(0.0 <= v <= 1.0 for _, v in series["idle_fraction"])
        assert all(v >= 0.0 for _, v in series["events_per_sec"])
        # DES-engine gauges mirror the latest tick for metrics.json readers.
        assert ("sim", "events_per_sec") in sim_rt.stats.gauges
        assert ("sim", "event_queue_depth") in sim_rt.stats.gauges
        assert 0 < sampler.samples_taken <= 64

    def test_max_samples_bounds_tick_chain(self, sim_rt):
        sampler = TelemetrySampler(sim_rt, period=1e-5, max_samples=3)

        def main():
            sampler.start()
            timer_future(1e-3).wait()

        sim_rt.run(main)
        assert sampler.samples_taken == 3

    def test_sampler_feeds_tracer_counters(self, sim_rt):
        tracer = TraceRecorder()
        sampler = TelemetrySampler(sim_rt, period=1e-4, max_samples=16,
                                   tracer=tracer)

        def main():
            sampler.start()
            finish(lambda: forasync(8, lambda i: charge(2e-4), chunks=8))
            sampler.stop()

        sim_rt.run(main)
        names = {c.name for c in tracer.counters}
        assert {"ready_tasks", "utilization"} <= names
        assert all(0.0 <= c.value <= 1.0 for c in tracer.counters
                   if c.name == "utilization")

    def test_bad_period_rejected(self, sim_rt):
        with pytest.raises(ValueError):
            TelemetrySampler(sim_rt, period=0.0)


# ---------------------------------------------------------------------------
# Chrome-trace export round trip
# ---------------------------------------------------------------------------
class TestChromeTraceExport:
    def run_instrumented(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            fs = ctx.mpi.isend(np.arange(64), (me + 1) % n, tag=1)
            data, _, _ = yield ctx.mpi.irecv(src=(me - 1) % n, tag=1)
            yield fs
            return int(data.sum())

        ex = SimExecutor()
        tracer = TraceRecorder()
        ex.attach_tracer(tracer)
        cfg = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2)
        res = spmd_run(main, cfg, executor=ex,
                       module_factories=[mpi_factory(), telemetry_factory()])
        return tracer, res

    def test_round_trip_fields_and_flows(self):
        tracer, res = self.run_instrumented()
        doc = json.loads(tracer.to_chrome_trace())
        events = doc["traceEvents"]
        by_ph = {}
        for ev in events:
            by_ph.setdefault(ev["ph"], []).append(ev)
        # duration events carry task ids
        assert by_ph["X"]
        assert all({"name", "cat", "ts", "dur", "pid", "tid"} <= set(e)
                   for e in by_ph["X"])
        assert any(e["args"]["task_id"] >= 0 for e in by_ph["X"])
        # flow arrows come in start/finish pairs with matching ids
        starts = {e["id"] for e in by_ph["s"]}
        finishes = {e["id"] for e in by_ph["f"]}
        assert starts and starts == finishes
        assert all(e["bp"] == "e" for e in by_ph["f"])
        # spawn flows and message flows both present
        assert any(i.startswith("t") for i in starts)
        assert any(i.startswith("m") for i in starts)
        # a flow never finishes before it starts
        s_ts = {e["id"]: e["ts"] for e in by_ph["s"]}
        assert all(e["ts"] >= s_ts[e["id"]] for e in by_ph["f"])
        # telemetry counter tracks
        assert any(e["name"] == "ready_tasks" for e in by_ph["C"])

    def test_spawn_events_recorded_by_runtime(self):
        tracer, res = self.run_instrumented()
        assert tracer.spawns
        executed = {ev.task_id for ev in tracer.events}
        assert any(sp.task_id in executed for sp in tracer.spawns)

    def test_message_events_match_fabric_counts(self):
        tracer, res = self.run_instrumented()
        assert len(tracer.messages) == res.fabric.messages_sent
        vol = tracer.comm_volume()
        assert vol["mpi"]["messages"] > 0
        assert vol["mpi"]["bytes"] > 0
        assert all(m.delivery_time >= m.send_time for m in tracer.messages)


# ---------------------------------------------------------------------------
# per-module communication accounting
# ---------------------------------------------------------------------------
class TestCommAccounting:
    def test_mux_counters_per_channel(self):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            fs = ctx.mpi.isend(np.arange(32), (me + 1) % n, tag=7)
            yield ctx.mpi.irecv(src=(me - 1) % n, tag=7)
            yield fs

        cfg = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2)
        res = spmd_run(main, cfg, module_factories=[mpi_factory()])
        merged = res.merged_stats()
        assert merged.counter("mpi", "msgs_sent") == res.fabric.messages_sent
        assert merged.counter("mpi", "msgs_received") == res.fabric.messages_sent
        assert merged.counter("mpi", "bytes_sent") == res.fabric.bytes_sent
        assert merged.counter("mpi", "msgs_matched") == res.fabric.messages_sent
        assert merged.histogram("mpi", "msg_size").n == res.fabric.messages_sent

    def test_polling_stats_counted(self, sim_rt):
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=1e-4)
        box = {"done": False}

        def main():
            p = Promise("op")
            svc.watch(lambda: (box["done"], 1), p)
            timer_future(5e-4).on_ready(
                lambda f: box.__setitem__("done", True))
            p.get_future().wait()

        sim_rt.run(main)
        assert sim_rt.stats.counter("test", "poll_sweeps") == svc.sweeps
        assert sim_rt.stats.counter("test", "futures_satisfied") == 1


# ---------------------------------------------------------------------------
# polling sweep regression (satellite: duplicate sweeps)
# ---------------------------------------------------------------------------
class TestPollingSweepRegression:
    def _instrument(self, svc):
        times = []
        orig = svc._sweep

        def logged():
            times.append(svc.runtime.executor.now())
            orig()

        svc._sweep = logged
        return times

    def test_eager_kick_no_duplicate_sweeps(self, sim_rt):
        """Two completions with eager kicks plus a pending interval timer
        used to run two sweeps for one completion (double-charging
        sweep_cost); the stale timer must now be a no-op."""
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=1e-3)
        times = self._instrument(svc)
        flags = {"a": False, "b": False}

        def main():
            pa, pb = Promise("a"), Promise("b")
            svc.watch(lambda: (flags["a"], 1), pa)
            svc.watch(lambda: (flags["b"], 2), pb)

            def fire(key):
                def cb(_f):
                    flags[key] = True
                    svc.kick()
                return cb

            timer_future(1e-4).on_ready(fire("a"))
            timer_future(2e-3).on_ready(fire("b"))
            pa.get_future().wait()
            pb.get_future().wait()

        sim_rt.run(main)
        # deterministic sweep schedule: the initial watch sweep, one kick
        # sweep per completion, and at most one interval sweep between them;
        # before the epoch fix the stale t=1ms timer added a duplicate.
        assert svc.sweeps == len(times)
        assert len(times) == len(set(times)), "duplicate sweep at one instant"
        assert svc.sweeps <= 4
        assert sim_rt.stats.counter("test", "poll_kicks") == 2

    def test_interval_only_sweep_count_exact(self, sim_rt):
        svc = PollingService(sim_rt, sim_rt.sysmem, module="test",
                             interval=5e-4, eager_kick=False)
        times = self._instrument(svc)
        box = {"done": False}

        def main():
            p = Promise("op")
            svc.watch(lambda: (box["done"], 1), p)
            timer_future(1e-4).on_ready(
                lambda f: box.__setitem__("done", True))
            p.get_future().wait()

        sim_rt.run(main)
        # exactly: the immediate watch sweep (pending) + the one interval
        # sweep that finds the op complete
        assert svc.sweeps == 2
        assert len(times) == 2


# ---------------------------------------------------------------------------
# scoped recursion limit (satellite: constructor side effect)
# ---------------------------------------------------------------------------
class TestScopedRecursionLimit:
    def test_constructor_has_no_side_effect(self):
        before = sys.getrecursionlimit()
        ex = SimExecutor()
        assert sys.getrecursionlimit() == before
        ex.shutdown()
        assert sys.getrecursionlimit() == before

    def test_raised_while_driving_restored_on_shutdown(self):
        # Pin a low starting limit: earlier tests' spmd runs may leave their
        # (still-alive) executors' raised limit in place.
        outer = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            ex = SimExecutor()
            model = discover(machine("workstation"), num_workers=1)
            rt = HiperRuntime(model, ex).start()
            rt.run(lambda: charge(1e-6))
            assert (sys.getrecursionlimit()
                    == SimExecutor.ENGINE_RECURSION_LIMIT)
            rt.shutdown()
            ex.shutdown()
            assert sys.getrecursionlimit() == 1000
        finally:
            sys.setrecursionlimit(outer)

    def test_shutdown_respects_foreign_changes(self):
        outer = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            ex = SimExecutor()
            model = discover(machine("workstation"), num_workers=1)
            rt = HiperRuntime(model, ex).start()
            rt.run(lambda: charge(1e-6))
            foreign = SimExecutor.ENGINE_RECURSION_LIMIT + 5000
            sys.setrecursionlimit(foreign)
            rt.shutdown()
            ex.shutdown()
            # someone else raised the limit meanwhile: do not clobber it
            assert sys.getrecursionlimit() == foreign
        finally:
            sys.setrecursionlimit(outer)


# ---------------------------------------------------------------------------
# deque snapshot (satellite: double total() read)
# ---------------------------------------------------------------------------
class TestDequeSnapshot:
    def test_snapshot_reads_counters_not_slots(self, sim_rt, monkeypatch):
        """snapshot() reads each place's O(1) occupancy counter (one int read
        per place — no TOCTOU window) instead of walking slots via total()."""
        calls = []
        orig = PlaceDeques.total

        def counted(self):
            calls.append(self.place.name)
            return orig(self)

        monkeypatch.setattr(PlaceDeques, "total", counted)
        snap = sim_rt.deques.snapshot()
        assert calls == [], "snapshot must not walk slots via total()"
        assert snap == {
            pd.place.name: pd.ready
            for pd in sim_rt.deques._by_place_id.values() if pd.ready
        }


# ---------------------------------------------------------------------------
# profiling harness
# ---------------------------------------------------------------------------
class TestProfileHarness:
    def test_profile_spmd_writes_artifacts(self, tmp_path):
        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            fs = ctx.mpi.isend(np.arange(128), (me + 1) % n, tag=3)
            data, _, _ = yield ctx.mpi.irecv(src=(me - 1) % n, tag=3)
            yield fs
            return int(data.sum())

        cfg = ClusterConfig(nodes=2, ranks_per_node=1, workers_per_rank=2)
        report = profile_spmd(main, cfg, module_factories=[mpi_factory()],
                              out_dir=str(tmp_path))
        assert report.result.results == [8128, 8128]
        assert 0.0 < report.utilization <= 1.0

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["nranks"] == 2
        assert metrics["makespan"] > 0
        assert metrics["comm_volume"]["mpi"]["messages"] > 0
        assert metrics["stats"]["counters"]["mpi.msgs_sent"] > 0
        assert metrics["stats"]["series"]["ready_tasks"]

        trace = json.loads((tmp_path / "trace.json").read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "s", "f", "C"} <= phases

    def test_profile_cli_fig7(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["profile", "fig7", "--scale", "0.2",
                       "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "metrics.json").exists()
        assert (tmp_path / "trace.json").exists()
        out = capsys.readouterr().out
        assert "utilization" in out
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert 0.0 < metrics["utilization"] <= 1.0


# ---------------------------------------------------------------------------
# bench harness telemetry columns
# ---------------------------------------------------------------------------
class TestBenchTelemetry:
    def test_sweep_carries_telemetry(self):
        from repro.bench import Series, sweep

        def main(ctx):
            me, n = ctx.rank, ctx.nranks
            fs = ctx.mpi.isend(me, (me + 1) % n, tag=1)
            yield ctx.mpi.irecv(src=(me - 1) % n, tag=1)
            yield fs

        def run(nodes):
            cfg = ClusterConfig(nodes=nodes, ranks_per_node=1,
                                workers_per_rank=2)
            return spmd_run(main, cfg, module_factories=[mpi_factory()])

        sw = sweep("t", [Series("hiper", run)], [2])
        tel = sw.telemetry["hiper"][2]
        assert 0.0 <= tel["utilization"] <= 1.0
        assert tel["msgs"] > 0 and tel["bytes"] > 0
        flat = sw.flat()
        assert "hiper@2" in flat
        assert "hiper@2:utilization" in flat
        assert "telemetry" in sw.table()
