"""Flat DES engine gates: validation, cross-engine equivalence, wave path.

The slab/calendar event engine (``SimExecutor(engine="flat")``) and the
vectorized fabric wave path exist purely for throughput — neither is allowed
to change a single scheduling decision. Four families of checks pin that:

1. **Input validation** — negative delays and NaN timestamps raise
   ``ConfigError`` (a ``ValueError``) on both engines instead of silently
   corrupting queue order.
2. **Pop-order equivalence** — hypothesis drives random interleavings of
   ``call_later``/``call_at``/``cancel_event``/advance (including rearming
   callbacks that push mid-dispatch) against both engines and requires the
   identical fire log, cancel verdicts, and final quiescence.
3. **Wave bit-identity** — ``SimFabric.transmit_wave`` must leave the exact
   floats a loop of ``transmit`` leaves: delivery times, NIC availability,
   pairwise-FIFO clamps, byte counters, injection-complete returns.
4. **End-to-end** — the real ISx exchange with waves active equals the
   forced per-message fallback and the flat engine bit-for-bit
   (:func:`repro.verify.isx_engine_differential` is the same gate at CI
   scale).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.sim import SimExecutor
from repro.net.costmodel import NetworkModel
from repro.net.fabric import SimFabric
from repro.util.errors import ConfigError

ENGINES = ("objects", "flat")

_settings = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# 1. validation: negative / NaN scheduling inputs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
class TestSchedulingValidation:
    def test_negative_delay_rejected(self, engine):
        ex = SimExecutor(engine=engine)
        with pytest.raises(ConfigError, match="non-negative"):
            ex.call_later(-1e-9, lambda: None)

    def test_nan_delay_rejected(self, engine):
        ex = SimExecutor(engine=engine)
        with pytest.raises(ConfigError):
            ex.call_later(float("nan"), lambda: None)

    def test_nan_timestamp_rejected(self, engine):
        ex = SimExecutor(engine=engine)
        with pytest.raises(ConfigError):
            ex.call_at(float("nan"), lambda: None)

    def test_rejection_is_a_value_error(self, engine):
        """Callers that guard with plain ``except ValueError`` must catch it."""
        ex = SimExecutor(engine=engine)
        with pytest.raises(ValueError):
            ex.call_later(-0.5, lambda: None)
        with pytest.raises(ValueError):
            ex.call_at(float("nan"), lambda: None)

    def test_queue_usable_after_rejection(self, engine):
        """A rejected call must leave no partial record behind."""
        ex = SimExecutor(engine=engine)
        with pytest.raises(ConfigError):
            ex.call_later(-1.0, lambda: None)
        assert ex.pending_events() == 0
        ran = []
        ex.call_later(1e-6, lambda: ran.append(True))
        ex.drain()
        assert ran == [True]


# ----------------------------------------------------------------------
# 2. cross-engine pop-order equivalence
# ----------------------------------------------------------------------
def _drive(engine, ops):
    """Apply one op sequence to a fresh executor; return every observable
    that describes the schedule: the fire log (label, virtual time) in
    dispatch order, each cancel's verdict, and the drained event count."""
    ex = SimExecutor(engine=engine)
    log = []
    handles = []
    labels = iter(range(1 << 20))

    def make_cb(label, k):
        def cb():
            log.append((label, ex.now()))
            # Rearm every third event: pushes arriving *mid-dispatch* are
            # the flat engine's trickiest case (in-flight cohort slots must
            # not be recycled under the dispatcher).
            if label % 3 == 0 and label < 3_000:
                handles.append(ex.call_later(k * 1e-6, make_cb(next(labels), k)))
        return cb

    cancels = []
    for kind, k, j in ops:
        if kind == "later":
            handles.append(ex.call_later(k * 1e-6, make_cb(next(labels), k)))
        elif kind == "at":
            # Deliberately allowed to land at/below the event floor once
            # advances interleave — the clamp must behave identically.
            handles.append(ex.call_at(k * 1e-6, make_cb(next(labels), k)))
        elif kind == "cancel":
            if handles:
                cancels.append(ex.cancel_event(handles[j % len(handles)]))
        else:  # advance one cohort, if any
            if ex.pending_events():
                ex._advance_events()
    ex.drain()
    assert ex.pending_events() == 0
    out = (log, cancels, ex.events_processed)
    ex.shutdown()
    return out


_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["later", "at", "cancel", "advance"]),
        st.integers(0, 12),    # timestamp scale: small range forces cohorts
        st.integers(0, 255),   # cancel-target selector
    ),
    max_size=120,
)


class TestEngineEquivalence:
    @_settings
    @given(ops=_ops_strategy)
    def test_random_interleavings_pop_identically(self, ops):
        assert _drive("flat", ops) == _drive("objects", ops)

    def test_batch_matches_per_event_calls(self):
        """``call_at_batch`` (the wave entry point) must dispatch in the
        exact order of equivalent per-event ``call_at`` calls, on both
        engines, including ties across batches."""
        whens = [3e-6, 1e-6, 3e-6, 2e-6, 1e-6, 3e-6]
        logs = {}
        for engine in ENGINES:
            for mode in ("batch", "single"):
                ex = SimExecutor(engine=engine)
                log = []
                if mode == "batch":
                    ex.call_at_batch(whens, log.append, list(range(len(whens))))
                    ex.call_at_batch(whens, log.append,
                                     list(range(10, 10 + len(whens))))
                else:
                    for i, w in enumerate(whens):
                        ex.call_at(w, lambda i=i: log.append(i))
                    for i, w in enumerate(whens):
                        ex.call_at(w, lambda i=i: log.append(10 + i))
                ex.drain()
                logs[(engine, mode)] = log
                ex.shutdown()
        assert len(set(map(tuple, logs.values()))) == 1

    def test_cancel_after_fire_returns_false(self):
        for engine in ENGINES:
            ex = SimExecutor(engine=engine)
            h = ex.call_later(1e-6, lambda: None)
            ex.drain()
            assert ex.cancel_event(h) is False

    def test_handle_not_resurrected_by_slot_reuse(self):
        """Flat engine: a stale handle must stay dead even after its slab
        slot is recycled by a new event (generation tag mismatch)."""
        ex = SimExecutor(engine="flat")
        h = ex.call_later(1e-6, lambda: None)
        ex.drain()
        ran = []
        ex.call_later(1e-6, lambda: ran.append(True))  # likely reuses the slot
        assert ex.cancel_event(h) is False
        ex.drain()
        assert ran == [True]


# ----------------------------------------------------------------------
# 3. fabric wave bit-identity
# ----------------------------------------------------------------------
_DSTS = [0, 3, 9, 17, 18, 25, 8, 31, 1]  # self-send, intra-node, shared NICs
_SRC = 1


def _run_fabric(use_wave, nbytes, engine="objects"):
    ex = SimExecutor(engine=engine)
    fab = SimFabric(ex, 32, NetworkModel(), ranks_per_node=8)
    seen = {r: [] for r in range(32)}
    for r in range(32):
        fab.register_sink(r, lambda s, p, t, r=r: seen[r].append((s, p, t)))
    payloads = [f"m{i}" for i in range(len(_DSTS))]
    if use_wave:
        injects = fab.transmit_wave(_SRC, _DSTS, nbytes, payloads)
    else:
        sizes = [nbytes] * len(_DSTS) if np.isscalar(nbytes) else list(nbytes)
        injects = [fab.transmit(_SRC, d, sz, p)
                   for d, sz, p in zip(_DSTS, sizes, payloads)]
    ex.drain()
    state = (injects, seen, list(fab._tx_avail), list(fab._rx_avail),
             dict(fab._pair_last), fab.messages_sent, fab.bytes_sent)
    ex.shutdown()
    return state


class TestWaveBitIdentity:
    def test_constant_size_wave_matches_scalar_loop(self):
        assert _run_fabric(True, 48) == _run_fabric(False, 48)

    def test_varying_size_wave_matches_scalar_loop(self):
        sizes = [0, 64, 4096, 17, 48, 48, 1 << 16, 9, 5]
        assert _run_fabric(True, sizes) == _run_fabric(False, sizes)

    def test_wave_on_flat_engine_matches(self):
        assert _run_fabric(True, 48, engine="flat") == _run_fabric(False, 48)

    def test_wave_refuses_fault_hook(self):
        from repro.util.errors import CommError
        ex = SimExecutor()
        fab = SimFabric(ex, 4, NetworkModel())
        fab.fault_hook = lambda s, d, n, p: None
        with pytest.raises(CommError, match="fault injection"):
            fab.transmit_wave(0, [1], 8, ["x"])

    def test_wave_length_mismatch_rejected(self):
        from repro.util.errors import CommError
        ex = SimExecutor()
        fab = SimFabric(ex, 4, NetworkModel())
        with pytest.raises(CommError, match="length mismatch"):
            fab.transmit_wave(0, [1, 2], 8, ["only-one"])


# ----------------------------------------------------------------------
# 4. end-to-end: ISx exchange, wave vs. fallback vs. flat engine
# ----------------------------------------------------------------------
def _run_isx(engine="objects"):
    from repro.apps.isx import IsxConfig, isx_main, validate_isx
    from repro.bench.harness import cluster_for
    from repro.distrib import spmd_run
    from repro.shmem import shmem_factory

    cfg = IsxConfig(keys_per_pe=1 << 9, byte_scale=1 << 7)
    res = spmd_run(
        isx_main("flat", cfg),
        cluster_for("titan", 2, layout="flat"),
        module_factories=[shmem_factory(direct=True)],
        executor=SimExecutor(engine=engine),
    )
    validate_isx(cfg, res.nranks, res.results)
    digest = tuple(hashlib.sha256(np.asarray(r).tobytes()).hexdigest()
                   for r in res.results)
    return repr(res.makespan), digest


class TestIsxWavePath:
    def test_wave_active_and_fallback_agree(self, monkeypatch):
        from repro.shmem.backend import ShmemBackend

        calls = {"wave": 0}
        orig = ShmemBackend.amo_fetch_wave

        def counting(self, *a, **kw):
            calls["wave"] += 1
            return orig(self, *a, **kw)

        monkeypatch.setattr(ShmemBackend, "amo_fetch_wave", counting)
        with_wave = _run_isx()
        assert calls["wave"] > 0, "wave path never engaged"

        monkeypatch.setattr(ShmemBackend, "wave_capable", lambda self: False)
        calls["wave"] = 0
        fallback = _run_isx()
        assert calls["wave"] == 0
        assert with_wave == fallback

    def test_flat_engine_matches_objects(self):
        assert _run_isx(engine="flat") == _run_isx(engine="objects")

    def test_engine_differential_report_ok(self):
        """The CI gate's own checker at a reduced size (32 PEs here; CI runs
        the default 64)."""
        from repro.verify import isx_engine_differential

        rep = isx_engine_differential(nodes=2)
        assert rep.ok, rep.describe()
        assert [r.engine for r in rep.runs] == ["objects", "flat"]


# ----------------------------------------------------------------------
# 5. the verify differential across all three apps (sim vs. flat-sim)
# ----------------------------------------------------------------------
class TestWorkloadDifferential:
    """The flat engine must match the objects engine on every verify
    workload — ISx is exchange-heavy, UTS is spawn/steal-heavy (the event
    queue mostly carries singleton timer cohorts), and Graph500's
    level-synchronous BFS mixes finish-scope joins with fan-out bursts."""

    @pytest.mark.parametrize("workload", ["isx", "uts", "graph500"])
    def test_flat_sim_matches_sim(self, workload):
        from repro.verify.differential import differential

        rep = differential(workload, engines=("sim", "flat-sim"))
        assert rep.ok, rep.describe()
