"""Shim for environments without the `wheel` package, where PEP-517 editable
installs fail (`pip install -e . --no-build-isolation --no-use-pep517` uses
this instead). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
